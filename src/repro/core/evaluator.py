"""The staged PNN query engine (Sections 4-6).

One pipeline serves every query: :meth:`QueryEngine.evaluate` runs four
explicit, inspectable stages —

1. **plan** — resolve the request's estimator, world budget and precision
   into a :class:`~repro.core.planner.QueryPlan` (no randomness consumed);
2. **filter** — the UST-tree's dmin/dmax pruning yields candidates ``C(q)``
   and influence objects ``I(q)`` (Section 6);
3. **estimate** — a pluggable strategy (:mod:`repro.core.estimators`)
   produces per-object probabilities: Monte-Carlo world sampling
   (Section 5), exact enumeration, PTIME Lemma 2 bounds, or the hybrid
   bounds-then-sample fast path;
4. **threshold** — compare against τ and assemble the result, attaching an
   :class:`~repro.core.results.EvaluationReport` (stage timings, pruning
   and cache accounting, per-object estimator provenance).

:meth:`QueryEngine.explain` runs stages 1-2 only and returns the plan plus
a report skeleton — the observability hook for serving layers.  The
classic entry points (``forall_nn``, ``exists_nn``, ``continuous_nn``,
``nn_probabilities``) are thin shims over ``evaluate()`` with unchanged
signatures and bit-identical seeded results.

Refinement draws worlds through a per-object :class:`~repro.core.worlds.
WorldCache`: each object is sampled at most once per *draw epoch* (with a
per-object RNG derived from the engine seed, the epoch and the object id,
so worlds do not depend on which other objects a query refines) — and, by
default, only over the **window the batch actually requests** rather than
the object's full adapted span.  A batch first computes the union of its
requests' time sets; every object is then drawn over that union clamped to
its span, and a later batch that holds the epoch and asks for later tics
*forward-extends* the cached paths by resuming the stored RNG stream
(bit-identical to one-shot sampling of the union window; see
:mod:`repro.core.worlds` for the soundness argument and the backward-
request fallback).  Standalone queries advance the epoch on entry — they
see fresh, independent worlds exactly as before — while :meth:`QueryEngine.
batch_query` holds one epoch across a whole batch, so sliding-window
monitoring re-samples each object at most once instead of once per query.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from ..markov import native as native_tier
from ..markov.arena import ArenaRequest, SamplingArena, sample_paths_arena
from ..obs.tracing import NULL_TRACER
from ..spatial.ust_tree import PruningResult, USTTree
from ..trajectory.database import TrajectoryDatabase
from ..trajectory.trajectory import UncertainObject
from .estimators import EstimationContext, EstimateOutcome, make_estimator
from .planner import Explanation, QueryPlan, build_plan
from .queries import Query, QueryRequest, normalize_times, union_window
from .results import (
    EvaluationReport,
    ObjectProbability,
    PCNNResult,
    QueryResult,
    RawProbabilities,
    ReverseNNResult,
)
from .worlds import WorldCache

__all__ = ["QueryEngine"]


class QueryEngine:
    """Evaluates P∃NNQ, P∀NNQ, PCNNQ (and their kNN forms) on a database.

    Parameters
    ----------
    db:
        The uncertain trajectory database.
    n_samples:
        Possible worlds sampled per query (the paper uses 10k; Hoeffding's
        inequality — :mod:`repro.analysis.hoeffding` — bounds the induced
        estimation error).
    seed / rng:
        Source of randomness; pass exactly one.
    use_pruning:
        Toggle UST-tree filtering (ablation hook).  Without pruning every
        object overlapping ``T`` is refined.
    refine_per_tic:
        Tighten index bounds with per-tic diamond MBRs during pruning.
    backend:
        Sampling backend for refinement: ``"compiled"`` (vectorized
        inverse-CDF, the default), ``"native"`` (the optional C kernel
        tier of :mod:`repro.markov.native` — same draws through compiled
        sweeps; raises a descriptive error at construction when the tier
        cannot load) or ``"reference"`` (legacy row-dict walk, kept for
        parity testing).  All three yield bit-identical worlds for one
        seed.
    reuse_worlds:
        When ``True``, standalone queries do *not* advance the draw epoch,
        so consecutive queries share sampled worlds until
        :meth:`new_draw_epoch` is called explicitly.  The default preserves
        the classic semantics: every standalone query sees fresh worlds.
        One caveat under window restriction: a held-epoch request reaching
        *before* an object's cached window redraws that object's worlds
        over the union window (backward extension is unsound; see
        :mod:`repro.core.worlds`), so estimates for the overlap can move
        without an explicit refresh.  Forward-growing request sequences —
        the sliding-window monitoring pattern — never redraw.
    window_restrict:
        When ``True`` (default) cached worlds cover only the requested
        window — the per-batch union of query times, clamped to each
        object's span — and grow forward on demand.  ``False`` restores
        the full-adapted-span sampling of the pre-windowed engine (kept as
        an ablation and for workloads whose windows jump backwards so
        often that union redraws would dominate).
    fused:
        When ``True`` (default) refinement draws the worlds of *all* of a
        query's candidate objects in one columnar pass through the
        :class:`~repro.markov.arena.SamplingArena`, and the distance
        tensor is computed by a single gather + einsum over the fused
        block — no per-object Python loop.  ``False`` keeps the classic
        object-major loop (the ablation the fused-parity tests and the
        ``bench_kernels`` fused-vs-loop kernels compare against).  Both
        paths are bit-identical per seed; fusion only applies to the
        compiled backend (``backend="reference"`` always loops).
    incremental:
        When ``True`` (default) database mutations invalidate the derived
        structures *selectively*: the UST-tree removes and reinserts only
        the mutated objects' segments, the world cache drops only their
        segments (:meth:`WorldCache.invalidate_objects`) and the sampling
        arena evicts only their packed tables — the streaming-ingest fast
        path.  ``False`` restores wholesale invalidation (full index
        rebuild, full cache flush, fresh arena on every mutation), kept as
        the lockstep oracle the incremental path is tested against.  The
        engine also falls back to wholesale invalidation whenever the
        database cannot say which objects changed
        (:meth:`TrajectoryDatabase.changed_since` returning ``None``).
    prune_vectorized:
        When ``True`` (default) the UST-tree filter runs its columnar
        implementation (one broadcasted distance pass over all
        (segment, tic) pairs plus gathered per-tic MBR refinement);
        ``False`` keeps the per-entry reference loop — the parity oracle,
        and the PR-5 baseline of the ``monitor_tick`` benchmark.  Both
        are bit-identical.
    refine_cache_size:
        Capacity (entries) of the per-request refinement distance-tensor
        cache used by *shared-world* evaluations on an ``incremental``
        engine.  Each entry holds one ``dist[w, o, t]`` tensor keyed by
        ``(query coords, times, object ids, n_samples, backend)`` and
        stamped with ``(worlds_token, draw_epoch)``; a standing
        subscription re-evaluated over held worlds recomputes only the
        *columns* of objects the database mutated since the tensor was
        last current (:meth:`TrajectoryDatabase.changed_since`),
        re-deriving its probabilities from the patched tensor.
        Bit-identical to a full recompute: clean columns' worlds are
        cache hits at the same stamp, and dirty columns redraw exactly
        what a wholesale pass would (per-object RNGs do not depend on
        which other objects a call refines).  ``0`` disables the cache;
        ``incremental=False`` always bypasses it (the wholesale lockstep
        oracle).
    """

    def __init__(
        self,
        db: TrajectoryDatabase,
        n_samples: int = 1000,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        use_pruning: bool = True,
        refine_per_tic: bool = True,
        ust_tree: USTTree | None = None,
        backend: str = "compiled",
        reuse_worlds: bool = False,
        window_restrict: bool = True,
        fused: bool = True,
        incremental: bool = True,
        prune_vectorized: bool = True,
        refine_cache_size: int = 64,
        tracer=None,
        metrics=None,
        slow_log=None,
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be positive")
        if rng is not None and seed is not None:
            raise ValueError("pass either seed or rng, not both")
        if backend not in ("compiled", "native", "reference"):
            raise ValueError(f"unknown sampling backend {backend!r}")
        if backend == "native":
            native_tier.require_native()
        self.db = db
        self.n_samples = int(n_samples)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.use_pruning = use_pruning
        self.refine_per_tic = refine_per_tic
        self.backend = backend
        self.reuse_worlds = reuse_worlds
        self.window_restrict = window_restrict
        self.fused = bool(fused)
        self.incremental = bool(incremental)
        self.prune_vectorized = bool(prune_vectorized)
        if refine_cache_size < 0:
            raise ValueError("refine_cache_size must be >= 0")
        self.refine_cache_size = int(refine_cache_size)
        #: Telemetry (see :mod:`repro.obs`): the tracer times the pipeline
        #: stages — ``stage_seconds`` is derived from its span durations,
        #: so :data:`NULL_TRACER` (the default) still times spans, it just
        #: retains nothing.  ``metrics``/``slow_log`` are optional feeds;
        #: every call site guards on ``is not None`` so the default path
        #: costs nothing.  None of the three ever touches RNG state.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.slow_log = slow_log
        # Shared-world refinement tensors, LRU by request key; entries are
        # ``{"stamp", "version", "dist"}`` (see ``refine_cache_size`` docs).
        self._refine_cache: OrderedDict[tuple, dict] = OrderedDict()
        #: Estimate-stage reuse accounting (per-tick deltas reported by the
        #: streaming monitor): whole-tensor cache hits/misses and the
        #: per-object columns served from cache vs recomputed.
        self.estimate_cache_hits = 0
        self.estimate_cache_misses = 0
        self.estimate_columns_reused = 0
        self.estimate_columns_refreshed = 0
        self._ust = ust_tree
        if ust_tree is not None and metrics is not None:
            ust_tree.metrics = metrics
        #: Cached per-object sampled worlds; see :mod:`repro.core.worlds`.
        self.worlds = WorldCache()
        if metrics is not None:
            self.worlds.bind_metrics(metrics)
        self._draw_epoch = 0
        self._epoch_counter = 0  # monotonic allocator (epochs can be restored)
        self._batch_depth = 0
        self._batch_window: tuple[int, int] | None = None
        self._direct_draws = 0
        self._direct_round = 0
        self._last_batch_epoch: int | None = None
        # Columnar sampling arena (fused refinement); mutated objects are
        # evicted selectively, populated on first touch per object.
        self._arena = self._new_arena()
        self._rng_tags: dict[str, tuple[np.ndarray, int]] = {}
        # Mutation sync state: the database version the derived structures
        # (index, arena, world cache) currently reflect, plus the world
        # cache's wholesale-invalidation token (bumped only when a
        # non-selective flush is required; selective ingests keep it).
        self._mut_seen = db.version
        self._worlds_token = 0
        #: Cumulative invalidation accounting (the streaming monitor
        #: reports per-tick deltas of these): full index rebuilds,
        #: per-object incremental index updates, and world-cache segments
        #: dropped by selective invalidation.
        self.index_rebuilds = 0
        self.index_updates = 0
        self.worlds_invalidated = 0
        # Root entropy for per-object world RNGs: drawn once from the main
        # stream so two engines with the same seed sample identical worlds.
        self._world_entropy = int(self.rng.integers(2**63))

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    @property
    def ust_tree(self) -> USTTree:
        """The UST-tree over the database (built lazily, maintained on change).

        The database's mutation counter detects added/removed objects and
        newly ingested observations, so queries never run against a stale
        index.  On an ``incremental`` engine (the default) a mutation
        re-indexes only the touched objects' segments in place; otherwise
        — or when the mutation log cannot name the touched objects — the
        tree is rebuilt from scratch.
        """
        self._sync_mutations()
        if self._ust is None:
            self._ust = USTTree(self.db)
            if self.metrics is not None:
                self._ust.metrics = self.metrics
            self.index_rebuilds += 1
        return self._ust

    def _new_arena(self) -> SamplingArena:
        """A fresh arena with the metrics feed bound (if any).

        Every arena construction in the engine (and the serve worker's
        wholesale-sync path) routes through here so
        ``arena_table_builds_total`` keeps counting across resets.
        """
        arena = SamplingArena()
        if self.metrics is not None:
            arena.table_build_counter = self.metrics.counter(
                "arena_table_builds_total",
                help="Per-tic distance/transition table builds in the "
                "sampling arena (cache misses, incl. LRU re-builds).",
            )
        return arena

    def invalidate_index(self) -> None:
        """Drop the index explicitly (mutations are detected automatically)."""
        self._ust = None

    def _sync_mutations(self) -> None:
        """Bring every derived structure in line with the database.

        Called on entry of each query path.  When the database can name
        the objects a version delta touched (and the engine is
        ``incremental``), exactly those objects are invalidated: their
        index segments re-indexed, their packed arena tables evicted and
        their cached worlds dropped — everything else stays bit-identical.
        Otherwise the classic wholesale invalidation runs: index dropped,
        arena reset, world-cache token bumped (flushing all worlds at the
        next stamped access).
        """
        version = self.db.version
        if version == self._mut_seen:
            return
        changed = (
            self.db.changed_since(self._mut_seen) if self.incremental else None
        )
        if changed is None:
            self._ust = None
            self._arena = self._new_arena()
            self._worlds_token += 1
        else:
            if self._ust is not None:
                for oid in sorted(changed):
                    self._ust.update_object(oid)
                    self.index_updates += 1
            for oid in changed:
                self._arena.discard(oid)
                if oid not in self.db:
                    # Removed ids free their cached RNG tags too (re-added
                    # ids recompute the identical digest, so eviction is
                    # semantically free) — a forever-stream cycling object
                    # ids must not leak per-id state.
                    self._rng_tags.pop(oid, None)
            self.worlds_invalidated += self.worlds.invalidate_objects(changed)
        self._mut_seen = version

    # ------------------------------------------------------------------
    # world management
    # ------------------------------------------------------------------
    @property
    def draw_epoch(self) -> int:
        """Current draw epoch; worlds are deterministic within one epoch."""
        return self._draw_epoch

    @property
    def worlds_token(self) -> int:
        """The world cache's wholesale-invalidation token.

        Part of the cache stamp ``(token, epoch)``: it advances only when
        a mutation forces a *full* flush (``incremental=False``, or a
        mutation log too old to name the touched objects).  Selective
        streaming invalidation keeps it — untouched objects' worlds
        survive the ingest bit-identically.
        """
        return self._worlds_token

    @property
    def sampler_calls(self) -> int:
        """Full sampler invocations so far (cache misses + direct draws).

        Forward extensions of cached segments are cheaper resumed draws and
        are tracked separately as ``worlds.partial_hits``.
        """
        return self.worlds.misses + self._direct_draws

    def new_draw_epoch(self) -> int:
        """Advance to a fresh, never-used epoch: subsequent queries redraw."""
        self._epoch_counter += 1
        self._draw_epoch = self._epoch_counter
        return self._draw_epoch

    def _on_batch_begin(self, reqs: list) -> None:
        """Hook: a *top-level* ``evaluate_many`` batch is about to run.

        Called once per outermost batch, after the epoch and batch window
        are pinned but before the first request evaluates.  The base engine
        does nothing; the sharded serving engine overrides it to predict
        the batch's refinement columns and fetch them from all shard
        workers in one round trip instead of one round per request.
        """

    def _on_batch_end(self) -> None:
        """Hook: the outermost batch finished (normally or by exception)."""

    @contextmanager
    def held_batch(
        self,
        epoch: int | None = None,
        window: tuple[int, int] | None = None,
    ):
        """Run a block under an externally supplied batch context.

        Temporarily adopts ``epoch`` as the current draw epoch and merges
        ``window`` into the live batch window, incrementing the batch depth
        so world lookups inside the block take the shared-cache path with
        exactly the anchors a coordinator's ``evaluate_many`` would use.
        This is how shard workers reproduce the coordinator's cache
        evolution bit-for-bit: the coordinator ships its epoch and batch
        window with every compute command, and the worker evaluates inside
        ``held_batch(epoch, window)``.  All prior state is restored on
        exit; the epoch counter is advanced past ``epoch`` so a later
        ``new_draw_epoch`` cannot re-issue it.
        """
        prev_epoch = self._draw_epoch
        prev_last = self._last_batch_epoch
        prev_window = self._batch_window
        if epoch is not None:
            epoch = int(epoch)
            self._epoch_counter = max(self._epoch_counter, epoch)
            self._draw_epoch = epoch
            self._last_batch_epoch = epoch
        if window is not None:
            lo, hi = int(window[0]), int(window[1])
            if prev_window is not None:
                lo = min(lo, prev_window[0])
                hi = max(hi, prev_window[1])
            self._batch_window = (lo, hi)
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            self._batch_window = prev_window
            if epoch is not None:
                self._draw_epoch = prev_epoch
                self._last_batch_epoch = prev_last

    def restore_batch_epoch(self) -> bool:
        """Rewind to the last ``evaluate_many`` batch's draw epoch.

        Returns ``False`` (and does nothing) when no batch ran yet.  The
        streaming monitor calls this before prefetching dirty objects'
        worlds during ingest, so the warm-up draws land in exactly the
        epoch the tick's held-world evaluations will read from — the same
        rewind ``evaluate_many(refresh_worlds=False)`` performs itself.
        """
        if self._last_batch_epoch is None:
            return False
        self._draw_epoch = self._last_batch_epoch
        return True

    def _begin_query(self) -> None:
        """Epoch policy at query entry.

        Standalone queries get fresh worlds (classic semantics); inside a
        batch, or when the engine was built with ``reuse_worlds=True``, the
        current epoch is held so worlds are shared.
        """
        if not self.reuse_worlds and self._batch_depth == 0:
            self.new_draw_epoch()

    def _object_entropy(self, object_id: str, round_: int) -> np.ndarray | None:
        """uint32 entropy words seeding the (object, epoch, round) stream.

        Pre-coerced uint32 entropy template.  SeedSequence coerces a
        python-int list to exactly this little-endian limb layout, so
        seeding from the template with the epoch/round limbs patched in
        yields the *same* pool — the same streams — while skipping the
        per-call coercion (it dominates construction cost, and refinement
        builds one generator per candidate).  Returns ``None`` when the
        epoch or round overflows its single-limb slot; callers then seed
        from the equivalent python-int list instead.
        """
        cached = self._rng_tags.get(object_id)
        if cached is None:
            digest = hashlib.sha256(object_id.encode("utf-8")).digest()
            tags = [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]
            limbs: list[int] = []
            entropy = self._world_entropy
            while True:
                limbs.append(entropy & 0xFFFFFFFF)
                entropy >>= 32
                if not entropy:
                    break
            template = np.array(limbs + [0, 0] + tags, dtype=np.uint32)
            cached = (template, len(limbs))
            self._rng_tags[object_id] = cached
        template, n_limbs = cached
        epoch = self._draw_epoch
        if 0 <= epoch < 2**32 and 0 <= round_ < 2**32:
            entropy_arr = template.copy()
            entropy_arr[n_limbs] = epoch
            entropy_arr[n_limbs + 1] = round_
            return entropy_arr
        return None

    def _object_rng(self, object_id: str, round_: int = 0) -> np.random.Generator:
        """Deterministic per-(object, epoch[, round]) generator.

        Derived from the engine's root entropy rather than drawn from the
        shared stream, so an object's worlds do not depend on which other
        objects a query happens to refine — k-variants and repeated windows
        stay exactly comparable.  The id enters the seed as a full 128-bit
        digest (a 32-bit tag would correlate colliding objects' worlds,
        breaking object independence at ~10k-object scale).  ``round_``
        distinguishes successive direct ``distance_tensor`` calls within
        one epoch, so repeated calls still yield fresh, averageable worlds.
        """
        entropy_arr = self._object_entropy(object_id, round_)
        if entropy_arr is not None:
            seed = np.random.SeedSequence(entropy_arr)
        else:  # huge epochs/rounds span multiple limbs: take the slow path
            template, n_limbs = self._rng_tags[object_id]
            seed = np.random.SeedSequence(
                [
                    self._world_entropy,
                    self._draw_epoch,
                    round_,
                    *(int(tag) for tag in template[n_limbs + 2 :]),
                ]
            )
        return np.random.Generator(np.random.PCG64(seed))

    def _object_rng_handle(self, object_id: str, round_: int = 0):
        """Per-object RNG for bulk arena requests.

        On a native-backend engine whose verified C seeder is available
        this returns a :class:`~repro.markov.native.LazySeededRng` — the
        arena then seeds and draws the uniforms in C without ever
        constructing a ``Generator`` (the handle materializes one, parked
        at the identical stream position, only if some other consumer
        touches it).  Everywhere else it is exactly :meth:`_object_rng`.
        """
        if self.backend == "native" and native_tier.seed_fill_ready():
            entropy_arr = self._object_entropy(object_id, round_)
            if entropy_arr is not None:
                return native_tier.LazySeededRng(entropy_arr)
        return self._object_rng(object_id, round_)

    def _cache_window(self, obj: UncertainObject, times: np.ndarray) -> tuple[int, int]:
        """The window a shared (cached) draw for ``obj`` should cover.

        Inside a batch this is the batch's precomputed time-union — so
        every request of the batch slices one common draw — clamped to the
        object's span; for standalone shared queries (``reuse_worlds``) it
        is the hull of the requested times.  With ``window_restrict=False``
        it is always the full adapted span (the pre-windowed engine).
        """
        if not self.window_restrict:
            return obj.t_first, obj.t_last
        if self._batch_window is not None:
            lo, hi = self._batch_window
            return max(obj.t_first, lo), min(obj.t_last, hi)
        return int(times[0]), int(times[-1])

    def _sampled_states(
        self, obj: UncertainObject, times: np.ndarray, n: int
    ) -> np.ndarray:
        """Worlds for one object at the given (covered, sorted) times.

        When worlds are shared across queries (inside a batch, or on a
        ``reuse_worlds`` engine) the cache holds one growable window
        segment per object and epoch — anchored at the earliest requested
        time and forward-extended on demand — so every sub-window reuses
        the same worlds and the *full* sampler runs at most once per object
        per epoch (extensions are cheap resumed draws).  Otherwise — a
        standalone default query on a fresh epoch, or a direct
        ``distance_tensor`` call — nothing could coherently be reused, so
        the object is sampled over just the requested window without
        touching the cache; only shared-epoch segments ever enter it.
        Answers within one epoch are thus drawn from the same worlds, with
        one exception: a request reaching *before* a cached anchor redraws
        that object's union window fresh (the backward fallback of
        :meth:`WorldCache.states_for`).
        """
        times = np.asarray(times, dtype=np.intp)
        share = self.reuse_worlds or self._batch_depth > 0
        if not share:
            self._direct_draws += 1
            rng = self._object_rng(obj.object_id, self._direct_round)
            return obj.sample_states(times, n, rng, backend=self.backend)

        t_lo, t_hi = self._cache_window(obj, times)
        draw, extend = self._object_sampler(obj, n)
        seg = self.worlds.states_for(
            key=(obj.object_id, n, self.backend),
            stamp=(self._worlds_token, self._draw_epoch),
            t_lo=t_lo,
            t_hi=t_hi,
            sampler=draw,
            extender=extend,
        )
        return seg.slice(times)

    def _object_sampler(self, obj: UncertainObject, n: int):
        """The per-object ``(draw, extend)`` pair the world cache consumes.

        One definition for every non-fused lookup path (query refinement
        and :meth:`prefetch_worlds`), so the RNG derivation and the
        resumed draw's anchor-echo convention (``[:, 1:]``) cannot drift
        between them.
        """

        def draw(lo: int, hi: int) -> tuple[np.ndarray, np.random.Generator]:
            rng = self._object_rng(obj.object_id)
            states = obj.adapted.sample_paths(rng, n, lo, hi, backend=self.backend)
            return states, rng

        def extend(
            rng: np.random.Generator,
            start_states: np.ndarray,
            t_from: int,
            hi: int,
        ) -> np.ndarray:
            grown = obj.adapted.sample_paths(
                rng, n, t_from, hi, backend=self.backend, start_states=start_states
            )
            return grown[:, 1:]

        return draw, extend

    # ------------------------------------------------------------------
    # filter step
    # ------------------------------------------------------------------
    def filter_objects(
        self,
        q: Query,
        times: np.ndarray,
        k: int = 1,
        *,
        normalized: bool = False,
        reverse: bool = False,
    ) -> PruningResult:
        """Run the § 6 filter step (or the no-pruning fallback).

        ``normalized=True`` promises ``times`` is already the canonical
        sorted-unique array, skipping a redundant re-normalization on the
        internal query paths.

        ``reverse=True`` (the ``"reverse_nn"`` mode) forces the overlap
        fallback even on a pruning engine: the UST-tree's dmin/dmax
        bounds rank objects *around the query*, but in the reverse
        direction an object arbitrarily far from ``q`` can still have
        ``q`` among its k nearest neighbors (it only needs to be isolated
        from the other objects), so distance-to-``q`` pruning is unsound
        — every object overlapping ``T`` is a reverse candidate.
        """
        if not normalized:
            times = normalize_times(times)
        if self.use_pruning and not reverse:
            return self.ust_tree.prune(
                q.coords_at(times),
                times,
                k=k,
                refine_per_tic=self.refine_per_tic,
                vectorized=self.prune_vectorized,
            )
        overlapping = self.db.objects_overlapping(times)
        influencers = [o.object_id for o in overlapping]
        candidates = [o.object_id for o in overlapping if o.covers_all(times)]
        return PruningResult(
            candidates=candidates,
            influencers=influencers,
            prune_distances=np.full(times.size, np.inf),
            # The fallback scans every overlapping object; reporting 0 here
            # would make pruning-on/off EvaluationReport comparisons claim
            # the unpruned path examined nothing.
            examined_entries=len(overlapping),
        )

    def _arena_for(self, objects: list[UncertainObject]) -> SamplingArena:
        """The fused sampling arena, packed with the given objects.

        Mutation staleness is handled by :meth:`_sync_mutations` before
        any query path reaches here: an incremental engine evicts only the
        mutated objects' packed tables, a wholesale invalidation replaces
        the arena.  Objects join on first refinement at their stable
        database order so the packed layout is independent of
        candidate-list order.
        """
        for obj in objects:
            if obj.object_id not in self._arena:
                self._arena.ensure(
                    obj.object_id,
                    obj.compiled,
                    order=self.db.object_index(obj.object_id),
                )
        return self._arena

    # ------------------------------------------------------------------
    # refinement: possible worlds
    # ------------------------------------------------------------------
    def distance_tensor(
        self,
        object_ids: list[str],
        q: Query,
        times: np.ndarray,
        n_samples: int | None = None,
        *,
        normalized: bool = False,
        cache_k: int = 1,
    ) -> np.ndarray:
        """Sample worlds and return ``dist[w, o, t]`` (inf where not alive).

        Objects are sampled independently — the paper's object-independence
        assumption — and each world combines one sampled trajectory per
        object.  Inside a batch (or on a ``reuse_worlds`` engine) worlds
        come from the epoch's shared cache; on a default engine each direct
        call draws fresh window-scoped worlds (deterministic per epoch).
        Pass ``normalized=True`` when ``times`` is already canonical.

        On a ``fused`` engine (the default, compiled backend) all objects
        are drawn in one columnar arena pass and the distances come from a
        single gather + einsum over the fused ``(n, O, T)`` block;
        ``fused=False`` keeps the classic per-object loop.  Both are
        bit-identical per seed.

        ``cache_k`` partitions the refinement tensor *cache* by the
        requesting query's kNN depth.  The tensor's values are
        k-independent; the partition keeps each standing subscription's
        dirty-column version accounting private to its own entry, so
        same-query subscriptions at different depths never interleave
        patch bookkeeping on one shared array.
        """
        if not normalized:
            times = normalize_times(times)
        self._sync_mutations()
        n = self.n_samples if n_samples is None else int(n_samples)
        share = self.reuse_worlds or self._batch_depth > 0
        if not share:
            # One round per direct call: repeated calls within an epoch draw
            # fresh (yet seed-deterministic) worlds, so averaging over calls
            # adds information exactly as it did before the world cache.
            self._direct_round += 1
        cacheable = (
            # Only batched (monitor-tick) evaluations: a standalone
            # ``reuse_worlds`` evaluation keeps the classic world-cache
            # path so its per-report cache-hit accounting stays exact.
            self._batch_depth > 0
            and self.refine_cache_size > 0
            # Duplicate ids would alias tensor columns in the patch step.
            and len(set(object_ids)) == len(object_ids)
        )
        if cacheable and self.incremental:
            return self._cached_distance_tensor(
                list(object_ids), q, times, n, cache_k
            )
        if cacheable:
            # The wholesale oracle (``incremental=False``) recomputes every
            # column; counted identically so quiet-tick reuse accounting
            # stays comparable between the two modes.
            self.estimate_cache_misses += 1
            self.estimate_columns_refreshed += len(object_ids)
        return self._compute_distance_tensor(object_ids, q, times, n)

    def _compute_distance_tensor(
        self, object_ids: list[str], q: Query, times: np.ndarray, n: int
    ) -> np.ndarray:
        """Backend dispatch for one (sub)tensor computation."""
        if (
            self.fused
            and self.backend in ("compiled", "native")
            # Duplicate ids (legal, if unusual) would collide in the bulk
            # cache lookup; the loop path handles them naturally.
            and len(set(object_ids)) == len(object_ids)
        ):
            return self._distance_tensor_fused(object_ids, q, times, n)
        return self._distance_tensor_loop(object_ids, q, times, n)

    def _cached_distance_tensor(
        self,
        object_ids: list[str],
        q: Query,
        times: np.ndarray,
        n: int,
        cache_k: int = 1,
    ) -> np.ndarray:
        """Serve a shared-world refinement tensor, patching dirty columns.

        On a stamp-matching hit only the columns of objects mutated since
        the entry was last current are recomputed (their invalidated
        worlds redraw; everything else is served in place).  A stamp
        mismatch (new epoch or wholesale flush), an overflowed mutation
        log (``changed_since`` → ``None``) or a cold key rebuilds the full
        tensor — the classic path.
        """
        q_coords = q.coords_at(times)
        key = (
            "dist",
            cache_k,
            q_coords.tobytes(),
            times.tobytes(),
            tuple(object_ids),
            n,
            self.backend,
            self.fused,
        )
        stamp = (self._worlds_token, self._draw_epoch)
        entry = self._refine_cache.get(key)
        if entry is not None and entry["stamp"] == stamp:
            changed = self.db.changed_since(entry["version"])
            if changed is not None:
                self._refine_cache.move_to_end(key)
                dirty_cols = [
                    i for i, oid in enumerate(object_ids) if oid in changed
                ]
                if dirty_cols:
                    sub = self._compute_distance_tensor(
                        [object_ids[i] for i in dirty_cols], q, times, n
                    )
                    entry["dist"][:, dirty_cols, :] = sub
                entry["version"] = self.db.version
                self.estimate_cache_hits += 1
                self.estimate_columns_refreshed += len(dirty_cols)
                self.estimate_columns_reused += len(object_ids) - len(dirty_cols)
                return entry["dist"]
        dist = self._compute_distance_tensor(object_ids, q, times, n)
        self.estimate_cache_misses += 1
        self.estimate_columns_refreshed += len(object_ids)
        self._refine_cache[key] = {
            "stamp": stamp,
            "version": self.db.version,
            "dist": dist,
        }
        self._refine_cache.move_to_end(key)
        while len(self._refine_cache) > self.refine_cache_size:
            self._refine_cache.popitem(last=False)
        return dist

    def _distance_tensor_loop(
        self, object_ids: list[str], q: Query, times: np.ndarray, n: int
    ) -> np.ndarray:
        """Object-major refinement: one sampler call and one distance
        broadcast per object (the ``fused=False`` ablation, and the only
        path for the reference backend)."""
        q_coords = q.coords_at(times)
        dist = np.full((n, len(object_ids), times.size), np.inf)
        for col, object_id in enumerate(object_ids):
            obj = self.db.get(object_id)
            alive = obj.alive_during(times)
            if not alive.any():
                continue
            alive_times = times[alive]
            states = self._sampled_states(obj, alive_times, n)
            coords = self.db.space.coords_of(states)  # (n, n_alive, d)
            diff = coords - q_coords[alive][None, :, :]
            dist[:, col, alive] = np.sqrt(np.sum(diff * diff, axis=-1))
        return dist

    def _distance_tensor_fused(
        self, object_ids: list[str], q: Query, times: np.ndarray, n: int
    ) -> np.ndarray:
        """Columnar refinement: one arena pass draws every object's worlds,
        then one gather + einsum computes all distances at once.

        Per-object RNG streams, cache windows and hit/partial/miss
        accounting are exactly those of the per-object path — only the
        execution shape changes (object count becomes a vectorized axis).
        """
        q_coords = q.coords_at(times)
        shape = (n, len(object_ids), times.size)
        if not object_ids:
            return np.full(shape, np.inf)
        alive = self.db.alive_matrix(object_ids, times)
        live_cols = np.flatnonzero(alive.any(axis=1))
        if live_cols.size == 0:
            return np.full(shape, np.inf)
        objects = [self.db.get(object_ids[c]) for c in live_cols]
        alive_times = [times[alive[c]] for c in live_cols]
        share = self.reuse_worlds or self._batch_depth > 0
        if share:
            items = []
            for obj, at in zip(objects, alive_times):
                t_lo, t_hi = self._cache_window(obj, at)
                items.append(((obj.object_id, n, self.backend), t_lo, t_hi))
            segments = self.worlds.states_for_many(
                items,
                stamp=(self._worlds_token, self._draw_epoch),
                bulk_sampler=self._bulk_sampler(objects, n),
            )
            states = [seg.slice(at) for seg, at in zip(segments, alive_times)]
        else:
            arena = self._arena_for(objects)
            requests = [
                ArenaRequest(
                    obj.object_id,
                    int(at[0]),
                    int(at[-1]),
                    self._object_rng_handle(obj.object_id, self._direct_round),
                )
                for obj, at in zip(objects, alive_times)
            ]
            drawn = sample_paths_arena(
                arena, requests, n, native=self.backend == "native"
            )
            self._direct_draws += len(requests)
            states = [
                paths[:, at - at[0]] for paths, at in zip(drawn, alive_times)
            ]
        # Fused distance kernel: pack every (object, alive tic) column and
        # scatter all norms back in one assignment.
        full_grid = live_cols.size == len(object_ids) and bool(alive.all())
        if full_grid:
            col_index = time_index = None
        else:
            dist = np.full(shape, np.inf)
            flat_alive = np.flatnonzero(alive[live_cols].ravel())
            col_index = live_cols[flat_alive // times.size]
            time_index = flat_alive % times.size
        space = self.db.space
        total_cols = sum(s.shape[1] for s in states)
        if times.size * space.n_states <= max(1_000_000, 4 * n * total_cols):
            # Distances depend only on (tic, state): tabulate them once per
            # query — the same subtract/square/sum/sqrt the per-object path
            # applies, so values stay bit-identical — then one 2-d gather
            # replaces materializing an (n, columns, d) coordinate block.
            diff = space.coords[None, :, :] - q_coords[:, None, :]
            per_state = np.sqrt(np.sum(diff * diff, axis=-1))  # (T, S)
            if (
                self.backend == "native"
                and full_grid
                and native_tier.can_gather_multi(states)
            ):
                # One C pass gathers straight from the per-object state
                # blocks into the destination tensor — no packed
                # concatenation, no (n, columns) temporary; identical
                # doubles move, so values are bit-identical.
                return native_tier.gather_distances_grid_multi(
                    per_state, states, np.empty(shape)
                )
            packed = np.concatenate(states, axis=1)  # (n, total columns)
            if self.backend == "native" and native_tier.can_gather(packed):
                if full_grid:
                    return native_tier.gather_distances_grid(
                        per_state, packed, np.empty(shape)
                    )
                return native_tier.gather_distances(
                    per_state, packed, time_index, col_index, dist
                )
            if full_grid:
                # Every object alive at every tic: the packed columns *are*
                # the (object, tic) grid in row-major order.
                tiled = np.tile(np.arange(times.size, dtype=np.intp), len(object_ids))
                return per_state[tiled, packed].reshape(shape)
            dist[:, col_index, time_index] = per_state[time_index, packed]
        else:
            # Huge state spaces: gather coordinates for the sampled states
            # only and einsum the norms.
            packed = np.concatenate(states, axis=1)  # (n, total columns)
            if full_grid:
                time_index = np.tile(
                    np.arange(times.size, dtype=np.intp), len(object_ids)
                )
            coords = space.coords_of(packed)  # (n, total columns, d)
            diff = coords - q_coords[time_index][None, :, :]
            norms = np.sqrt(np.einsum("wcd,wcd->wc", diff, diff))
            if full_grid:
                return norms.reshape(shape)
            dist[:, col_index, time_index] = norms
        return dist

    # ------------------------------------------------------------------
    # refinement: reverse direction (states, then pairwise distances)
    # ------------------------------------------------------------------
    def reverse_distance_tensors(
        self,
        object_ids: list[str],
        q: Query,
        times: np.ndarray,
        n_samples: int | None = None,
        *,
        normalized: bool = False,
        cache_k: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sampled tensors for reverse-kNN counting, from **one** draw.

        Returns ``(dist, object_dist)``: the familiar query-distance tensor
        ``dist[w, o, t]`` (bit-identical to :meth:`distance_tensor` over
        the same worlds — inside a shared epoch the two are served from
        the *same* cached world segments, so forward and reverse answers
        of one batch are mutually consistent) and the inter-object tensor
        ``object_dist[w, a, o, t] = d(a(t), o(t))`` with ``np.inf`` on the
        diagonal and wherever either endpoint is dead.  Both derive from a
        single sampled-states block per call — the reverse direction never
        re-samples per object.

        Memory is ``O(n · |O|² · |T|)`` for the inter-object tensor; the
        reverse mode is built for candidate sets the filter stage keeps
        small, not for the 10⁵-object fleet (which would go through a
        chunked streaming variant).
        """
        if not normalized:
            times = normalize_times(times)
        self._sync_mutations()
        n = self.n_samples if n_samples is None else int(n_samples)
        share = self.reuse_worlds or self._batch_depth > 0
        if not share:
            # Same round discipline as distance_tensor: one round per
            # direct call, so repeated reverse calls draw fresh worlds.
            self._direct_round += 1
        cacheable = (
            self._batch_depth > 0
            and self.refine_cache_size > 0
            and len(set(object_ids)) == len(object_ids)
        )
        if cacheable and self.incremental:
            states, alive = self._cached_states_block(
                list(object_ids), times, n, cache_k
            )
        else:
            if cacheable:
                self.estimate_cache_misses += 1
                self.estimate_columns_refreshed += len(object_ids)
            states, alive = self._states_block(list(object_ids), times, n)
        return self._reverse_from_states(states, alive, q.coords_at(times))

    def _states_block(
        self, object_ids: list[str], times: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sampled states for all objects: ``(states[w, o, t], alive[o, t])``.

        ``states`` carries ``-1`` where an object is not alive.  Worlds
        come from exactly the machinery of the distance-tensor paths (the
        shared world cache inside batches, the fused arena or per-object
        draws otherwise), so the same epoch yields the same worlds as a
        forward refinement over the same objects.
        """
        alive = self.db.alive_matrix(object_ids, times)
        states = np.full((n, len(object_ids), times.size), -1, dtype=np.intp)
        live_cols = np.flatnonzero(alive.any(axis=1))
        if live_cols.size == 0:
            return states, alive
        fused = (
            self.fused
            and self.backend in ("compiled", "native")
            and len(set(object_ids)) == len(object_ids)
        )
        if not fused:
            for col in live_cols:
                obj = self.db.get(object_ids[col])
                states[:, col, alive[col]] = self._sampled_states(
                    obj, times[alive[col]], n
                )
            return states, alive
        objects = [self.db.get(object_ids[c]) for c in live_cols]
        alive_times = [times[alive[c]] for c in live_cols]
        share = self.reuse_worlds or self._batch_depth > 0
        if share:
            items = []
            for obj, at in zip(objects, alive_times):
                t_lo, t_hi = self._cache_window(obj, at)
                items.append(((obj.object_id, n, self.backend), t_lo, t_hi))
            segments = self.worlds.states_for_many(
                items,
                stamp=(self._worlds_token, self._draw_epoch),
                bulk_sampler=self._bulk_sampler(objects, n),
            )
            drawn = [seg.slice(at) for seg, at in zip(segments, alive_times)]
        else:
            arena = self._arena_for(objects)
            requests = [
                ArenaRequest(
                    obj.object_id,
                    int(at[0]),
                    int(at[-1]),
                    self._object_rng_handle(obj.object_id, self._direct_round),
                )
                for obj, at in zip(objects, alive_times)
            ]
            paths = sample_paths_arena(
                arena, requests, n, native=self.backend == "native"
            )
            self._direct_draws += len(requests)
            drawn = [p[:, at - at[0]] for p, at in zip(paths, alive_times)]
        for col, block in zip(live_cols, drawn):
            states[:, col, alive[col]] = block
        return states, alive

    def _cached_states_block(
        self, object_ids: list[str], times: np.ndarray, n: int, cache_k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared-world states block with dirty-column patching.

        The reverse-mode sibling of :meth:`_cached_distance_tensor`: the
        cached array holds sampled *states* (query-independent, so every
        reverse subscription over the same object set, window, depth and
        world count shares one entry) and a mutation patches only the
        dirty objects' columns — including their aliveness rows, which an
        ingested observation can extend.
        """
        key = (
            "states",
            cache_k,
            times.tobytes(),
            tuple(object_ids),
            n,
            self.backend,
            self.fused,
        )
        stamp = (self._worlds_token, self._draw_epoch)
        entry = self._refine_cache.get(key)
        if entry is not None and entry["stamp"] == stamp:
            changed = self.db.changed_since(entry["version"])
            if changed is not None:
                self._refine_cache.move_to_end(key)
                dirty_cols = [
                    i for i, oid in enumerate(object_ids) if oid in changed
                ]
                if dirty_cols:
                    sub_states, sub_alive = self._states_block(
                        [object_ids[i] for i in dirty_cols], times, n
                    )
                    entry["states"][:, dirty_cols, :] = sub_states
                    entry["alive"][dirty_cols] = sub_alive
                entry["version"] = self.db.version
                self.estimate_cache_hits += 1
                self.estimate_columns_refreshed += len(dirty_cols)
                self.estimate_columns_reused += len(object_ids) - len(dirty_cols)
                return entry["states"], entry["alive"]
        states, alive = self._states_block(object_ids, times, n)
        self.estimate_cache_misses += 1
        self.estimate_columns_refreshed += len(object_ids)
        self._refine_cache[key] = {
            "stamp": stamp,
            "version": self.db.version,
            "states": states,
            "alive": alive,
        }
        self._refine_cache.move_to_end(key)
        while len(self._refine_cache) > self.refine_cache_size:
            self._refine_cache.popitem(last=False)
        return states, alive

    def _reverse_from_states(
        self, states: np.ndarray, alive: np.ndarray, q_coords: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Derive ``(dist, object_dist)`` from one sampled-states block.

        The query-distance component applies exactly the per-object path's
        subtract/square/sum/sqrt, so values at alive positions are
        bit-identical to :meth:`distance_tensor` over the same worlds.
        The inter-object component is computed in world chunks to bound
        the ``(chunk, O, O, T, d)`` broadcast intermediate.
        """
        n, n_objects, n_times = states.shape
        space = self.db.space
        coords = space.coords_of(np.where(states >= 0, states, 0))
        dist = np.sqrt(
            np.sum((coords - q_coords[None, None, :, :]) ** 2, axis=-1)
        )
        dead = ~alive
        dist[:, dead] = np.inf
        object_dist = np.empty((n, n_objects, n_objects, n_times))
        step = max(1, int(4_000_000 // max(1, n_objects * n_objects * n_times)))
        for start in range(0, n, step):
            blk = coords[start : start + step]
            diff = blk[:, :, None, :, :] - blk[:, None, :, :, :]
            object_dist[start : start + step] = np.sqrt(
                np.sum(diff * diff, axis=-1)
            )
        object_dist[:, dead[:, None, :] | dead[None, :, :]] = np.inf
        object_dist[:, np.arange(n_objects), np.arange(n_objects), :] = np.inf
        return dist, object_dist

    #: Below this many outstanding draws a bulk lookup skips the fused
    #: arena pass: a per-object compiled draw is bit-identical and avoids
    #: rebuilding fused step tables (which pack *every* arena object) —
    #: the streaming shape, where an ingest leaves a couple of dirty
    #: objects to redraw while the rest of the working set stays cached.
    FUSED_DRAW_THRESHOLD = 4

    def _bulk_sampler(self, objects: list[UncertainObject], n: int):
        """The :meth:`WorldCache.states_for_many` callback: fuses every
        cache miss (fresh window draw) and partial hit (resumed forward
        extension) of one lookup into a single arena pass — unless only a
        handful of draws are outstanding, where the per-object compiled
        path (bit-identical per seed) is cheaper than touching the fused
        tables.  The arena is packed lazily, only when the fused branch
        actually runs: a streaming tick that redraws one dirty object must
        not pay a repack it never draws from."""

        def bulk(fresh: list, extend: list):
            if len(fresh) + len(extend) <= self.FUSED_DRAW_THRESHOLD:
                fresh_results = []
                for pos, t_lo, t_hi in fresh:
                    obj = objects[pos]
                    rng = self._object_rng(obj.object_id)
                    states = obj.adapted.sample_paths(
                        rng, n, t_lo, t_hi, backend=self.backend
                    )
                    fresh_results.append((states, rng))
                extend_results = [
                    objects[pos].adapted.sample_paths(
                        rng, n, t_from, t_hi,
                        backend=self.backend, start_states=last,
                    )[:, 1:]
                    for pos, rng, last, t_from, t_hi in extend
                ]
                return fresh_results, extend_results
            arena = self._arena_for(objects)
            requests = [
                ArenaRequest(
                    objects[pos].object_id, t_lo, t_hi,
                    self._object_rng_handle(objects[pos].object_id),
                )
                for pos, t_lo, t_hi in fresh
            ]
            requests += [
                ArenaRequest(
                    objects[pos].object_id, t_from, t_hi, rng, start_states=last
                )
                for pos, rng, last, t_from, t_hi in extend
            ]
            results = sample_paths_arena(
                arena, requests, n, native=self.backend == "native"
            )
            fresh_results = [
                (states, req.rng)
                for states, req in zip(results[: len(fresh)], requests[: len(fresh)])
            ]
            # Resumed draws echo the anchor column; the cache appends only
            # the newly grown tics.
            extend_results = [grown[:, 1:] for grown in results[len(fresh) :]]
            return fresh_results, extend_results

        return bulk

    def prefetch_worlds(
        self,
        object_ids: Sequence[str] | None = None,
        window: tuple[int, int] | None = None,
        n_samples: int | None = None,
    ) -> dict[str, int]:
        """Warm the world cache for a working set — no distances computed.

        Draws (or forward-extends) each object's cached worlds over
        ``window`` clamped to its span, exactly as a held-epoch query
        touching those objects would, and returns the lookup accounting
        (``{"objects", "hits", "partial_hits", "misses"}``).  This is the
        ingest-to-ready path of a serving deployment: after an event
        batch, one call restores query-ready state (index synced via
        :attr:`ust_tree`, worlds current) — on an ``incremental`` engine
        at the cost of the *dirty* objects only.  Worlds enter the cache
        at the current draw epoch, so the call is meaningful on engines
        that share worlds (``reuse_worlds=True``, or between held-epoch
        batches); a default standalone query afterwards would advance the
        epoch and redraw regardless.
        """
        self._sync_mutations()
        ids = list(object_ids) if object_ids is not None else self.db.object_ids
        n = self.n_samples if n_samples is None else int(n_samples)
        before = (self.worlds.hits, self.worlds.partial_hits, self.worlds.misses)
        items: list[tuple[tuple, int, int]] = []
        objects: list[UncertainObject] = []
        for object_id in ids:
            obj = self.db.get(object_id)
            t_lo, t_hi = (
                obj.t_first, obj.t_last
            ) if window is None else (
                max(obj.t_first, int(window[0])),
                min(obj.t_last, int(window[1])),
            )
            if t_lo > t_hi:
                continue  # object entirely outside the window
            objects.append(obj)
            items.append(((obj.object_id, n, self.backend), t_lo, t_hi))
        if items:
            stamp = (self._worlds_token, self._draw_epoch)
            if self.fused and self.backend in ("compiled", "native"):
                self.worlds.states_for_many(
                    items, stamp=stamp,
                    bulk_sampler=self._bulk_sampler(objects, n),
                )
            else:
                for obj, (key, t_lo, t_hi) in zip(objects, items):
                    draw, extend = self._object_sampler(obj, n)
                    self.worlds.states_for(
                        key=key, stamp=stamp, t_lo=t_lo, t_hi=t_hi,
                        sampler=draw, extender=extend,
                    )
        return {
            "objects": len(items),
            "hits": self.worlds.hits - before[0],
            "partial_hits": self.worlds.partial_hits - before[1],
            "misses": self.worlds.misses - before[2],
        }

    # ------------------------------------------------------------------
    # the staged pipeline: plan -> filter -> estimate -> threshold
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_request(request: QueryRequest | tuple) -> QueryRequest:
        """Accept bare ``(query, times[, mode[, tau[, k]]])`` tuples."""
        if isinstance(request, QueryRequest):
            return request
        return QueryRequest(*request)

    def plan(self, request: QueryRequest | tuple) -> QueryPlan:
        """Stage 1 only: the resolved execution plan (consumes no RNG)."""
        return build_plan(self._coerce_request(request), self.n_samples)

    def explain(self, request: QueryRequest | tuple) -> Explanation:
        """Plan + filter a request *without executing* the estimate stage.

        Runs stages 1-2 of the pipeline — estimator/sample-size resolution
        and the deterministic § 6 pruning — and returns the plan, the
        candidate/influence sets and a skeleton
        :class:`~repro.core.results.EvaluationReport` (``executed=False``,
        zero timings).  No worlds are sampled, no draw epoch is consumed
        and the world cache is untouched, so explaining is cheap enough
        for a serving layer to call on every request.
        """
        request = self._coerce_request(request)
        plan = build_plan(request, self.n_samples)
        times = np.asarray(plan.times, dtype=np.intp)
        pruning = self.filter_objects(
            request.query,
            times,
            k=request.k,
            normalized=True,
            reverse=request.mode == "reverse_nn",
        )
        report = EvaluationReport(
            **self._report_base(plan, pruning),
            n_samples=plan.n_samples,
            epsilon=plan.epsilon,
            notes=plan.notes,
            executed=False,
        )
        return Explanation(
            plan=plan,
            candidates=tuple(pruning.candidates),
            influencers=tuple(pruning.influencers),
            examined_entries=pruning.examined_entries,
            report=report,
        )

    def evaluate(
        self, request: QueryRequest | tuple
    ) -> QueryResult | PCNNResult | RawProbabilities | ReverseNNResult:
        """Run one request through the full staged pipeline.

        Stages: **plan** (estimator + world-budget resolution) →
        **filter** (§ 6 pruning) → **estimate** (the plan's strategy; see
        :mod:`repro.core.estimators`) → **threshold** (τ comparison and
        result assembly).  The returned result carries an
        :class:`~repro.core.results.EvaluationReport` with stage timings,
        pruning counts, world-cache deltas and per-object estimator
        provenance.

        With the default ``estimator="sampled"`` this is exactly the
        classic engine: the legacy entry points are shims over this method
        and return bit-identical seeded results.
        """
        request = self._coerce_request(request)
        tracer = self.tracer
        # Stage timings are read off span durations — one timing truth
        # whether tracing is recording (Tracer) or not (NullTracer).
        with tracer.span("evaluate") as sp_eval:
            with tracer.span("plan") as sp_plan:
                self._sync_mutations()
                plan = build_plan(request, self.n_samples)
                times = np.asarray(plan.times, dtype=np.intp)
                self._begin_query()
            with tracer.span("filter") as sp_filter:
                pruning = self.filter_objects(
                    request.query,
                    times,
                    k=request.k,
                    normalized=True,
                    reverse=request.mode == "reverse_nn",
                )
                # The kNN depth must fit the competitor pool the filter
                # produced: with fewer than k influence objects every alive
                # object would trivially qualify (np.partition's degenerate
                # branch), which is never what a caller asking for depth k
                # meant.  An *empty* pool stays legal — it yields the
                # classic empty result for any k.
                if pruning.influencers and request.k > len(pruning.influencers):
                    raise ValueError(
                        f"k={request.k} exceeds the filter stage's competitor "
                        f"pool ({len(pruning.influencers)} influence "
                        f"object(s) over T={list(map(int, times))}); a kNN "
                        "depth cannot exceed the number of objects that "
                        "could rank"
                    )
                # For ∃/PCNN/raw semantics every influence object is a
                # potential result (Section 6, "Pruning for the P∃NNQ
                # query"); the reverse direction likewise reports over the
                # full overlap set.
                result_ids = (
                    pruning.candidates
                    if request.mode == "forall"
                    else pruning.influencers
                )
            with tracer.span("estimate") as sp_estimate:
                cache_before = (
                    self.worlds.hits, self.worlds.partial_hits, self.worlds.misses
                )
                ctx = EstimationContext(
                    engine=self,
                    request=request,
                    plan=plan,
                    times=times,
                    pruning=pruning,
                    result_ids=list(result_ids),
                    refine_ids=list(pruning.influencers),
                )
                outcome = make_estimator(plan.resolved_estimator).run(ctx)
            with tracer.span("threshold") as sp_threshold:
                result = self._assemble(
                    request, plan, pruning, outcome, times, result_ids
                )
            result.report = self._build_report(
                plan,
                pruning,
                outcome,
                cache_before,
                {
                    "plan": sp_plan.duration_seconds,
                    "filter": sp_filter.duration_seconds,
                    "estimate": sp_estimate.duration_seconds,
                    "threshold": sp_threshold.duration_seconds,
                },
            )
            if tracer.enabled:
                sp_eval.set(
                    mode=request.mode,
                    estimator=plan.resolved_estimator,
                    n_candidates=len(pruning.candidates),
                    n_influencers=len(pruning.influencers),
                    n_samples=outcome.n_samples_used,
                )
        if self.metrics is not None or self.slow_log is not None:
            self._observe_evaluation(request, result.report, sp_eval)
        return result

    def _observe_evaluation(self, request, report, span) -> None:
        """Feed telemetry after one evaluation (read-only observation)."""
        m = self.metrics
        if m is not None:
            for stage, secs in report.stage_seconds.items():
                m.histogram(
                    "evaluate_latency_seconds",
                    help="Per-stage evaluate() latency.",
                    labels={"stage": stage},
                ).observe(secs)
            m.counter(
                "queries_total",
                help="Evaluations completed, by query mode.",
                labels={"mode": request.mode},
            ).inc()
            if report.n_samples:
                m.counter(
                    "worlds_sampled_total",
                    help="Possible worlds drawn/used by completed "
                    "evaluations.",
                ).inc(report.n_samples)
        log = self.slow_log
        if log is not None:
            total = report.total_seconds
            if total >= log.threshold_seconds:
                log.record(
                    f"evaluate:{request.mode}",
                    total,
                    explain=report.as_dict(),
                    trace=span.to_dict() if self.tracer.enabled else None,
                )

    def _assemble(
        self,
        request: QueryRequest,
        plan: QueryPlan,
        pruning: PruningResult,
        outcome: EstimateOutcome,
        times: np.ndarray,
        result_ids: list[str],
    ) -> QueryResult | PCNNResult | RawProbabilities | ReverseNNResult:
        """Threshold stage: τ-filter the estimates into the result object."""
        if request.mode == "pcnn":
            # The classic engine reports the engine-wide sample count even
            # when nothing needed refinement; preserved for bit-identity.
            result = PCNNResult(
                entries=list(outcome.entries or []),
                candidates=pruning.candidates,
                influencers=pruning.influencers,
                n_samples=plan.n_samples,
                sets_evaluated=outcome.sets_evaluated,
            )
            if request.maximal_only:
                result.entries = result.maximal_entries()
            return result
        if request.mode == "reverse_nn":
            estimates = {
                oid: outcome.probabilities[oid]
                for oid in result_ids
                if oid in outcome.probabilities
            }
            results = [
                ObjectProbability(oid, p)
                for oid, p in estimates.items()
                if p >= request.tau
            ]
            results.sort(key=lambda r: (-r.probability, r.object_id))
            return ReverseNNResult(
                results=results,
                probabilities=estimates,
                exists=dict(outcome.exists_probabilities or {}),
                candidates=pruning.candidates,
                influencers=pruning.influencers,
                n_samples=outcome.n_samples_used,
                k=request.k,
                times=times,
            )
        if request.mode == "raw":
            return RawProbabilities(
                forall=dict(outcome.probabilities),
                exists=dict(outcome.exists_probabilities or {}),
                candidates=pruning.candidates,
                influencers=pruning.influencers,
                n_samples=outcome.n_samples_used,
                times=times,
            )
        estimates = {
            oid: outcome.probabilities[oid]
            for oid in result_ids
            if oid in outcome.probabilities
        }
        results = [
            ObjectProbability(oid, p)
            for oid, p in estimates.items()
            if p >= request.tau
        ]
        results.sort(key=lambda r: (-r.probability, r.object_id))
        return QueryResult(
            results=results,
            probabilities=estimates,
            candidates=pruning.candidates,
            influencers=pruning.influencers,
            n_samples=outcome.n_samples_used,
            times=times,
        )

    @staticmethod
    def _report_base(plan: QueryPlan, pruning: PruningResult) -> dict:
        """Plan- and filter-derived report fields, shared by explain()
        skeletons and executed reports so the two cannot drift apart."""
        return {
            "estimator": plan.estimator,
            "resolved_estimator": plan.resolved_estimator,
            "mode": plan.mode,
            "k": plan.k,
            "delta": plan.delta,
            "n_candidates": len(pruning.candidates),
            "n_influencers": len(pruning.influencers),
            "examined_entries": pruning.examined_entries,
        }

    def _build_report(
        self,
        plan: QueryPlan,
        pruning: PruningResult,
        outcome: EstimateOutcome,
        cache_before: tuple[int, int, int],
        stage_seconds: dict[str, float],
    ) -> EvaluationReport:
        """Accounting for one executed evaluation (cache counters as deltas)."""
        epsilon = plan.epsilon
        if outcome.n_samples_used == 0 and plan.n_samples > 0:
            # The planned radius describes a draw that never happened (the
            # bounds decided every candidate, or nothing needed refinement);
            # reporting it would attach sampling error to certified values.
            epsilon = None
        return EvaluationReport(
            **self._report_base(plan, pruning),
            n_samples=outcome.n_samples_used,
            epsilon=epsilon,
            stage_seconds=stage_seconds,
            sampled_objects=outcome.sampled_objects,
            bounds_decided=sum(
                1
                for tag in outcome.estimator_by_object.values()
                if tag.startswith("bounds:")
            ),
            undecided=outcome.undecided,
            estimator_by_object=dict(outcome.estimator_by_object),
            cache_hits=self.worlds.hits - cache_before[0],
            cache_partial_hits=self.worlds.partial_hits - cache_before[1],
            cache_misses=self.worlds.misses - cache_before[2],
            notes=plan.notes + outcome.notes,
            executed=True,
        )

    # ------------------------------------------------------------------
    # classic entry points (shims over the pipeline)
    # ------------------------------------------------------------------
    def forall_nn(self, q: Query, times, tau: float = 0.0, k: int = 1) -> QueryResult:
        """``P∀kNNQ(q, D, T, τ)`` — NN at *every* time of ``T``.

        Shim over :meth:`evaluate` (``mode="forall"``, sampled estimator);
        seeded results are bit-identical to the pre-pipeline engine.
        """
        return self.evaluate(QueryRequest(q, times, "forall", tau, k))

    def exists_nn(self, q: Query, times, tau: float = 0.0, k: int = 1) -> QueryResult:
        """``P∃kNNQ(q, D, T, τ)`` — NN at *some* time of ``T``.

        Shim over :meth:`evaluate` (``mode="exists"``, sampled estimator);
        seeded results are bit-identical to the pre-pipeline engine.
        """
        return self.evaluate(QueryRequest(q, times, "exists", tau, k))

    def continuous_nn(
        self,
        q: Query,
        times,
        tau: float,
        k: int = 1,
        max_candidates: int = 100_000,
        use_certain_shortcut: bool = False,
        maximal_only: bool = False,
    ) -> PCNNResult:
        """``PCkNNQ(q, D, T, τ)`` — per-object qualifying timestamp sets.

        Any object alive during part of ``T`` can qualify on sub-intervals,
        so the refinement set is ``I(q)``, not ``C(q)``.  Shim over
        :meth:`evaluate` (``mode="pcnn"``); seeded results are
        bit-identical to the pre-pipeline engine.
        """
        return self.evaluate(
            QueryRequest(
                q,
                times,
                "pcnn",
                tau,
                k,
                max_candidates=max_candidates,
                use_certain_shortcut=use_certain_shortcut,
                maximal_only=maximal_only,
            )
        )

    def reverse_nn(
        self, q: Query, times, tau: float = 0.0, k: int = 1
    ) -> ReverseNNResult:
        """Reverse probabilistic kNN: which objects have ``q`` in their kNN set.

        Per object ``o``, the probability that the *query* is among ``o``'s
        ``k`` nearest neighbors — at every time of ``T`` for the primary
        (τ-thresholded) value, at some time for the companion ``exists``
        estimates, both counted from the same worlds.  Shim over
        :meth:`evaluate` (``mode="reverse_nn"``, sampled estimator).
        """
        return self.evaluate(QueryRequest(q, times, "reverse_nn", tau, k))

    def nn_probabilities(
        self, q: Query, times, k: int = 1, n_samples: int | None = None
    ) -> dict[str, tuple[float, float]]:
        """Per influence object: ``(P∀kNN, P∃kNN)`` estimates.

        Bypasses thresholding — the calibration experiments (Fig. 11) use
        this to compare estimators on the same object set.  Shim over
        :meth:`evaluate` (``mode="raw"``); seeded results are bit-identical
        to the pre-pipeline engine.
        """
        result = self.evaluate(
            QueryRequest(q, times, "raw", k=k, n_samples=n_samples)
        )
        return result.as_dict()

    # ------------------------------------------------------------------
    # batched queries (continuous monitoring)
    # ------------------------------------------------------------------
    def evaluate_many(
        self,
        requests: Sequence[QueryRequest | tuple],
        *,
        refresh_worlds: bool | None = None,
        window: tuple[int, int] | None = None,
    ) -> list[QueryResult | PCNNResult | RawProbabilities | ReverseNNResult]:
        """Evaluate many requests against one shared set of sampled worlds.

        All requests run in a single draw epoch: every influence object is
        sampled at most once per ``(n_samples, backend)`` no matter how many
        queries touch it, which is what makes sliding-window monitoring
        (P∀NN/P∃NN/PCNN over overlapping windows) cheap.  Sharing worlds
        also makes results *mutually consistent* — overlapping windows are
        estimated from the same possible worlds rather than independent
        redraws.

        On a ``window_restrict`` engine (the default) that one draw covers
        only the **union of the batch's query times** clamped to each
        object's span, not the full span — the refinement-cost win for
        narrow windows.  A later batch holding the epoch
        (``refresh_worlds=False``) whose union reaches further *forward*
        extends the cached paths bit-identically to one-shot sampling; a
        union reaching further *backward* triggers one fresh union-window
        redraw per object (see :mod:`repro.core.worlds`).

        Parameters
        ----------
        requests:
            :class:`~repro.core.queries.QueryRequest` items, or bare
            ``(query, times)`` / ``(query, times, mode)`` tuples that are
            coerced with default ``tau=0.0, k=1``.
        refresh_worlds:
            Whether to advance to a fresh epoch before the batch.  The
            default (``None``) follows engine policy: fresh worlds on a
            default engine, held worlds on a ``reuse_worlds`` engine
            (whose contract is that worlds only change on an explicit
            :meth:`new_draw_epoch` or a database mutation).  Pass ``False``
            to extend the previous *batch's* worlds — e.g. when a
            monitoring loop issues successive batches and wants estimates
            that only move when the database does; the engine restores
            that batch's epoch even if standalone queries ran in between
            (per-object RNGs are epoch-derived, so the same worlds are
            reproduced exactly, at worst at resampling cost).
        window:
            Optional ``(t_lo, t_hi)`` the batch's sampling window is
            *widened* to (it always covers at least the union of the
            requests' time sets).  A standing-query monitor passes the
            union over **all** of its subscriptions here so that the
            per-object cache anchors do not depend on which subset of
            subscriptions a tick happens to re-evaluate — held-epoch
            worlds then stay bit-identical across ticks whatever the
            dirty sets were.

        Returns
        -------
        list
            One :class:`QueryResult` (``forall``/``exists``),
            :class:`PCNNResult` (``pcnn``),
            :class:`~repro.core.results.RawProbabilities` (``raw``) or
            :class:`~repro.core.results.ReverseNNResult` (``reverse_nn``)
            per request, in order.
        """
        reqs = [self._coerce_request(r) for r in requests]
        if not reqs:
            return []
        explicit_hold = refresh_worlds is False
        if refresh_worlds is None:
            refresh_worlds = not self.reuse_worlds
        if refresh_worlds:
            self.new_draw_epoch()
        elif explicit_hold and self._last_batch_epoch is not None:
            # Only an *explicit* hold rewinds to the previous batch's epoch;
            # the default on a reuse_worlds engine keeps the current epoch,
            # so an explicit new_draw_epoch() between batches is respected.
            self._draw_epoch = self._last_batch_epoch
        self._last_batch_epoch = self._draw_epoch
        lo, hi = union_window(reqs)
        if window is not None:
            lo = min(lo, int(window[0]))
            hi = max(hi, int(window[1]))
        if self._batch_window is not None:
            # A nested batch widens the live window instead of replacing it,
            # so outer requests keep slicing covered segments.
            lo = min(lo, self._batch_window[0])
            hi = max(hi, self._batch_window[1])
        self._batch_window = (lo, hi)
        self._batch_depth += 1
        try:
            if self._batch_depth == 1:
                self._on_batch_begin(reqs)
            return [self.evaluate(req) for req in reqs]
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._batch_window = None
                self._on_batch_end()

    def batch_query(
        self,
        requests: Sequence[QueryRequest | tuple],
        *,
        refresh_worlds: bool | None = None,
        window: tuple[int, int] | None = None,
    ) -> list[QueryResult | PCNNResult | RawProbabilities | ReverseNNResult]:
        """Alias of :meth:`evaluate_many` (the pre-pipeline batch API)."""
        return self.evaluate_many(
            requests, refresh_worlds=refresh_worlds, window=window
        )
