"""The sampling-based PNN query engine (Sections 5 and 6).

Pipeline per query: (1) filter — the UST-tree's dmin/dmax pruning yields
candidates ``C(q)`` and influence objects ``I(q)``; (2) refinement — the
a-posteriori models of all influence objects are sampled into possible
worlds; (3) counting — world statistics estimate the requested probability
per candidate, compared against the threshold τ.
"""

from __future__ import annotations

import numpy as np

from ..spatial.ust_tree import PruningResult, USTTree
from ..trajectory.database import TrajectoryDatabase
from ..trajectory.nn import (
    exists_knn_prob,
    forall_knn_prob,
    knn_indicator,
    nn_indicator,
)
from .apriori import mine_timestamp_sets
from .queries import Query, normalize_times
from .results import ObjectProbability, PCNNEntry, PCNNResult, QueryResult

__all__ = ["QueryEngine"]


class QueryEngine:
    """Evaluates P∃NNQ, P∀NNQ, PCNNQ (and their kNN forms) on a database.

    Parameters
    ----------
    db:
        The uncertain trajectory database.
    n_samples:
        Possible worlds sampled per query (the paper uses 10k; Hoeffding's
        inequality — :mod:`repro.analysis.hoeffding` — bounds the induced
        estimation error).
    seed / rng:
        Source of randomness; pass exactly one.
    use_pruning:
        Toggle UST-tree filtering (ablation hook).  Without pruning every
        object overlapping ``T`` is refined.
    refine_per_tic:
        Tighten index bounds with per-tic diamond MBRs during pruning.
    """

    def __init__(
        self,
        db: TrajectoryDatabase,
        n_samples: int = 1000,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        use_pruning: bool = True,
        refine_per_tic: bool = True,
        ust_tree: USTTree | None = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be positive")
        if rng is not None and seed is not None:
            raise ValueError("pass either seed or rng, not both")
        self.db = db
        self.n_samples = int(n_samples)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.use_pruning = use_pruning
        self.refine_per_tic = refine_per_tic
        self._ust = ust_tree
        self._ust_version = db.version if ust_tree is not None else None

    # ------------------------------------------------------------------
    # index management
    # ------------------------------------------------------------------
    @property
    def ust_tree(self) -> USTTree:
        """The UST-tree over the database (built lazily, rebuilt on change).

        The database's mutation counter detects added/removed objects and
        newly ingested observations, so queries never run against a stale
        index.
        """
        if self._ust is None or self._ust_version != self.db.version:
            self._ust = USTTree(self.db)
            self._ust_version = self.db.version
        return self._ust

    def invalidate_index(self) -> None:
        """Drop the index explicitly (mutations are detected automatically)."""
        self._ust = None
        self._ust_version = None

    # ------------------------------------------------------------------
    # filter step
    # ------------------------------------------------------------------
    def filter_objects(
        self, q: Query, times: np.ndarray, k: int = 1
    ) -> PruningResult:
        """Run the § 6 filter step (or the no-pruning fallback)."""
        times = normalize_times(times)
        if self.use_pruning:
            return self.ust_tree.prune(
                q.coords_at(times), times, k=k, refine_per_tic=self.refine_per_tic
            )
        overlapping = self.db.objects_overlapping(times)
        influencers = [o.object_id for o in overlapping]
        candidates = [o.object_id for o in overlapping if o.covers_all(times)]
        return PruningResult(
            candidates=candidates,
            influencers=influencers,
            prune_distances=np.full(times.size, np.inf),
            examined_entries=0,
        )

    # ------------------------------------------------------------------
    # refinement: possible worlds
    # ------------------------------------------------------------------
    def distance_tensor(
        self, object_ids: list[str], q: Query, times: np.ndarray, n_samples: int | None = None
    ) -> np.ndarray:
        """Sample worlds and return ``dist[w, o, t]`` (inf where not alive).

        Objects are sampled independently — the paper's object-independence
        assumption — and each world combines one sampled trajectory per
        object.
        """
        times = normalize_times(times)
        n = self.n_samples if n_samples is None else int(n_samples)
        q_coords = q.coords_at(times)
        dist = np.full((n, len(object_ids), times.size), np.inf)
        for col, object_id in enumerate(object_ids):
            obj = self.db.get(object_id)
            alive = obj.alive_during(times)
            if not alive.any():
                continue
            alive_times = times[alive]
            states = obj.sample_states(alive_times, n, self.rng)
            coords = self.db.space.coords_of(states)  # (n, n_alive, d)
            diff = coords - q_coords[alive][None, :, :]
            dist[:, col, alive] = np.sqrt(np.sum(diff * diff, axis=-1))
        return dist

    # ------------------------------------------------------------------
    # P∀NNQ / P∃NNQ (Definitions 1, 2; k-extension of Section 8)
    # ------------------------------------------------------------------
    def forall_nn(self, q: Query, times, tau: float = 0.0, k: int = 1) -> QueryResult:
        """``P∀kNNQ(q, D, T, τ)`` — NN at *every* time of ``T``."""
        return self._threshold_query(q, times, tau, k, mode="forall")

    def exists_nn(self, q: Query, times, tau: float = 0.0, k: int = 1) -> QueryResult:
        """``P∃kNNQ(q, D, T, τ)`` — NN at *some* time of ``T``."""
        return self._threshold_query(q, times, tau, k, mode="exists")

    def _threshold_query(
        self, q: Query, times, tau: float, k: int, mode: str
    ) -> QueryResult:
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        times = normalize_times(times)
        pruning = self.filter_objects(q, times, k=k)
        # For ∃ semantics every influence object is a potential result
        # (Section 6, "Pruning for the P∃NNQ query").
        result_ids = pruning.candidates if mode == "forall" else pruning.influencers
        refine_ids = pruning.influencers
        if not refine_ids:
            return QueryResult([], {}, pruning.candidates, pruning.influencers, 0, times)

        dist = self.distance_tensor(refine_ids, q, times)
        if mode == "forall":
            probs = forall_knn_prob(dist, k)
        else:
            probs = exists_knn_prob(dist, k)
        by_id = {oid: float(p) for oid, p in zip(refine_ids, probs)}
        estimates = {oid: by_id[oid] for oid in result_ids}
        results = [
            ObjectProbability(oid, p) for oid, p in estimates.items() if p >= tau
        ]
        results.sort(key=lambda r: (-r.probability, r.object_id))
        return QueryResult(
            results=results,
            probabilities=estimates,
            candidates=pruning.candidates,
            influencers=pruning.influencers,
            n_samples=self.n_samples,
            times=times,
        )

    # ------------------------------------------------------------------
    # PCNNQ (Definition 3, Algorithm 1)
    # ------------------------------------------------------------------
    def continuous_nn(
        self,
        q: Query,
        times,
        tau: float,
        k: int = 1,
        max_candidates: int = 100_000,
        use_certain_shortcut: bool = False,
        maximal_only: bool = False,
    ) -> PCNNResult:
        """``PCkNNQ(q, D, T, τ)`` — per-object qualifying timestamp sets.

        Any object alive during part of ``T`` can qualify on sub-intervals,
        so the refinement set is ``I(q)``, not ``C(q)``.
        """
        times = normalize_times(times)
        pruning = self.filter_objects(q, times, k=k)
        refine_ids = pruning.influencers
        entries: list[PCNNEntry] = []
        sets_evaluated = 0
        if refine_ids:
            dist = self.distance_tensor(refine_ids, q, times)
            is_nn = knn_indicator(dist, k) if k > 1 else nn_indicator(dist)
            for col, object_id in enumerate(refine_ids):
                indicator = is_nn[:, col, :]
                mined, stats = mine_timestamp_sets(
                    indicator,
                    times,
                    tau,
                    max_candidates=max_candidates,
                    use_certain_shortcut=use_certain_shortcut,
                )
                sets_evaluated += stats.sets_evaluated
                for timeset, p in mined:
                    entries.append(PCNNEntry(object_id, timeset, p))
        result = PCNNResult(
            entries=entries,
            candidates=pruning.candidates,
            influencers=pruning.influencers,
            n_samples=self.n_samples,
            sets_evaluated=sets_evaluated,
        )
        if maximal_only:
            result.entries = result.maximal_entries()
        return result

    # ------------------------------------------------------------------
    # raw probability access (calibration experiments)
    # ------------------------------------------------------------------
    def nn_probabilities(
        self, q: Query, times, k: int = 1, n_samples: int | None = None
    ) -> dict[str, tuple[float, float]]:
        """Per influence object: ``(P∀kNN, P∃kNN)`` estimates.

        Bypasses thresholding — the calibration experiments (Fig. 11) use
        this to compare estimators on the same object set.
        """
        times = normalize_times(times)
        pruning = self.filter_objects(q, times, k=k)
        refine_ids = pruning.influencers
        if not refine_ids:
            return {}
        dist = self.distance_tensor(refine_ids, q, times, n_samples=n_samples)
        p_all = forall_knn_prob(dist, k)
        p_any = exists_knn_prob(dist, k)
        return {
            oid: (float(a), float(e))
            for oid, a, e in zip(refine_ids, p_all, p_any)
        }
