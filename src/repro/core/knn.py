"""Rank utilities and convenience wrappers for kNN semantics (Section 8).

The paper shows ``P∀kNN``/``P∃kNN``/``PC∀kNN`` are NP-hard in ``k`` and
answers them with the same sample-then-count machinery as ``k = 1``; the
engine methods accept ``k`` directly.  This module adds the rank-level
helpers used by examples and analyses on top of sampled worlds.
"""

from __future__ import annotations

import numpy as np

from ..trajectory.nn import knn_indicator

__all__ = [
    "rank_tensor",
    "kth_nn_distance",
    "knn_membership_prob",
    "expected_rank",
    "kth_nn_prob",
    "thresholded_knn_members",
]


def rank_tensor(dist: np.ndarray) -> np.ndarray:
    """``rank[w, o, t]`` = number of alive objects strictly closer than o.

    Rank 0 means nearest (ties share the rank).  Absent objects receive the
    sentinel rank ``n_objects`` (worse than any alive rank).
    """
    dist = np.asarray(dist, dtype=float)
    if dist.ndim != 3:
        raise ValueError("distance tensor must be (worlds, objects, times)")
    n_objects = dist.shape[1]
    closer = np.sum(dist[:, None, :, :] < dist[:, :, None, :], axis=2)
    closer[~np.isfinite(dist)] = n_objects
    return closer


def kth_nn_distance(dist: np.ndarray, k: int) -> np.ndarray:
    """``(worlds, times)`` distance of the k-th nearest alive object.

    ``inf`` where fewer than ``k`` objects are alive.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    dist = np.asarray(dist, dtype=float)
    ordered = np.sort(dist, axis=1)
    if k > dist.shape[1]:
        return np.full((dist.shape[0], dist.shape[2]), np.inf)
    return ordered[:, k - 1, :]


def knn_membership_prob(dist: np.ndarray, k: int) -> np.ndarray:
    """``(objects, times)`` per-time probability of being among the k nearest."""
    return knn_indicator(dist, k).mean(axis=0)


def expected_rank(dist: np.ndarray) -> np.ndarray:
    """``(objects, times)`` expected rank over worlds (absent = worst rank)."""
    return rank_tensor(dist).mean(axis=0)


def kth_nn_prob(dist: np.ndarray, k: int) -> np.ndarray:
    """``(objects, times)`` probability of being *exactly* the k-th nearest.

    "Exactly k-th" means in the kNN set but not in the (k-1)NN set, so for
    ``k = 1`` this is plain NN membership.  Computed as the difference of
    two partition-ranked indicators over the same worlds, which keeps the
    telescoping identity ``sum_j kth_nn_prob(d, j) = knn_membership_prob``
    exact (both sides count the same boolean tensors).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    member_k = knn_indicator(dist, k)
    if k == 1:
        return member_k.mean(axis=0)
    return (member_k & ~knn_indicator(dist, k - 1)).mean(axis=0)


def thresholded_knn_members(dist: np.ndarray, k: int, tau: float) -> np.ndarray:
    """Object indices whose per-time kNN-membership never drops below ``tau``.

    The τ-thresholded access path of the moving-kNN literature (Hashem et
    al.): report the objects that are among the ``k`` nearest with
    probability ``>= tau`` at *every* time of the tensor.  ``tau = 0``
    degenerates to "alive somewhere with nonzero membership", matching the
    engine's influence notion.
    """
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be in [0, 1]")
    prob = knn_membership_prob(dist, k)
    return np.flatnonzero((prob >= tau).all(axis=1) & (prob.sum(axis=1) > 0.0))
