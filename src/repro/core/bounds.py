"""PTIME probability bounds for P∀NN from pairwise domination (Lemma 2).

Section 4.2 proves that the *pairwise* domination probability
``P(o ≺_q^T o_a)`` is computable in polynomial time via the joint chain,
while the conjunction over all competitors is not (the conditioned model
loses the Markov property).  The pairwise probabilities still bound the
conjunction:

* **Upper bound** — ``P(∧_a o ≺ o_a) ≤ min_a P(o ≺ o_a)``;
* **Lower bound** — Boole/Fréchet: ``P(∧_a A_a) ≥ 1 − Σ_a P(¬A_a)``.

These bounds are exact for a single competitor and allow a query engine
to decide thresholds *without sampling* whenever a bound is conclusive
(``lower ≥ τ`` accepts, ``upper < τ`` rejects) — an optional fast path on
top of the paper's sampling solution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trajectory.database import TrajectoryDatabase
from .exact import domination_probability
from .queries import Query, normalize_times

__all__ = [
    "ForallBounds",
    "forall_nn_bounds",
    "bounds_partition",
    "decide_with_bounds",
]


@dataclass(frozen=True)
class ForallBounds:
    """Bracketing interval for one object's ``P∀NN``."""

    object_id: str
    lower: float
    upper: float
    #: pairwise domination probabilities per competitor id
    pairwise: dict[str, float]

    def __post_init__(self) -> None:
        if not -1e-9 <= self.lower <= self.upper + 1e-9:
            raise ValueError(
                f"inconsistent bounds for {self.object_id}: "
                f"[{self.lower}, {self.upper}]"
            )

    def decides(self, tau: float) -> bool | None:
        """True/False when the bounds settle the threshold, else ``None``."""
        if self.lower >= tau:
            return True
        if self.upper < tau:
            return False
        return None


def forall_nn_bounds(
    db: TrajectoryDatabase,
    object_id: str,
    q: Query,
    times,
    competitor_ids: list[str] | None = None,
) -> ForallBounds:
    """Compute Lemma 2 bounds on ``P∀NN(o, q, D, T)``.

    The object must cover all of ``T``.  Competitors not covering all of
    ``T`` contribute their domination probability over the covered part
    only — during their absent tics they cannot beat ``o``, which keeps
    both bounds valid.
    """
    times = normalize_times(times)
    obj = db.get(object_id)
    if not obj.covers_all(times):
        raise KeyError(f"object {object_id!r} does not cover the query times")

    if competitor_ids is None:
        competitor_ids = [
            o.object_id
            for o in db.objects_overlapping(times)
            if o.object_id != obj.object_id
        ]

    coords = db.space.coords
    pairwise: dict[str, float] = {}
    for other_id in competitor_ids:
        other = db.get(other_id)
        mask = other.alive_during(times)
        if not mask.any():
            pairwise[other_id] = 1.0
            continue
        shared = times[mask]
        pairwise[other_id] = domination_probability(
            obj.adapted, other.adapted, q, shared, coords
        )

    if pairwise:
        upper = min(pairwise.values())
        lower = max(0.0, 1.0 - sum(1.0 - p for p in pairwise.values()))
    else:
        upper = lower = 1.0  # no competitors: o is trivially always NN
    return ForallBounds(
        object_id=obj.object_id, lower=lower, upper=min(1.0, upper), pairwise=pairwise
    )


def bounds_partition(
    db: TrajectoryDatabase,
    q: Query,
    times,
    tau: float,
    candidate_ids: list[str],
    competitor_ids: list[str] | None = None,
) -> tuple[dict[str, ForallBounds], list[str], list[str], list[str]]:
    """Per-candidate bounds plus the (accepted, rejected, undecided) split.

    The single implementation behind both :func:`decide_with_bounds` and
    the pipeline's ``bounds``/``hybrid`` estimators.  ``competitor_ids``
    restricts the domination set (a candidate itself is always excluded);
    ``None`` uses every object overlapping ``times``.  Restricting to the
    filter step's influence set is sound: any object ever strictly closer
    than a candidate at a query time is itself an influence object.
    """
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be in [0, 1]")
    times = normalize_times(times)
    bounds: dict[str, ForallBounds] = {}
    accepted: list[str] = []
    rejected: list[str] = []
    undecided: list[str] = []
    for oid in candidate_ids:
        competitors = (
            None
            if competitor_ids is None
            else [other for other in competitor_ids if other != oid]
        )
        b = forall_nn_bounds(db, oid, q, times, competitors)
        bounds[oid] = b
        verdict = b.decides(tau)
        if verdict is True:
            accepted.append(oid)
        elif verdict is False:
            rejected.append(oid)
        else:
            undecided.append(oid)
    return bounds, accepted, rejected, undecided


def decide_with_bounds(
    db: TrajectoryDatabase,
    q: Query,
    times,
    tau: float,
    candidate_ids: list[str],
) -> tuple[list[str], list[str], list[str]]:
    """Partition candidates into (accepted, rejected, undecided) by bounds.

    Conclusive candidates never need sampling; only the undecided rest
    goes through the Monte-Carlo refinement.
    """
    _, accepted, rejected, undecided = bounds_partition(
        db, q, times, tau, candidate_ids
    )
    return accepted, rejected, undecided
