"""Query semantics, engines and oracles (the paper's primary contribution)."""

from .apriori import AprioriBudgetExceeded, MiningStats, mine_timestamp_sets
from .bounds import (
    ForallBounds,
    bounds_partition,
    decide_with_bounds,
    forall_nn_bounds,
)
from .estimators import (
    ESTIMATORS,
    AdaptiveEstimator,
    BoundsEstimator,
    EstimateOutcome,
    EstimationContext,
    Estimator,
    ExactEstimator,
    HybridEstimator,
    SampledEstimator,
    make_estimator,
)
from .evaluator import QueryEngine
from .exact import (
    PossibleTrajectory,
    WorldBudgetExceeded,
    domination_probability,
    enumerate_consistent_trajectories,
    exact_forall_nn_over_times,
    exact_nn_probabilities,
    exact_reverse_nn_probabilities,
)
from .planner import Explanation, QueryPlan, build_plan
from .queries import (
    ESTIMATOR_NAMES,
    QUERY_MODES,
    Query,
    QueryRequest,
    normalize_times,
    union_window,
)
from .results import (
    EvaluationReport,
    ObjectProbability,
    PCNNEntry,
    PCNNResult,
    QueryResult,
    RawProbabilities,
    ReverseNNResult,
)
from .snapshot import snapshot_nn_probability_at, snapshot_probabilities
from .worlds import WorldCache, WorldSegment

__all__ = [
    "AdaptiveEstimator",
    "AprioriBudgetExceeded",
    "BoundsEstimator",
    "ESTIMATORS",
    "ESTIMATOR_NAMES",
    "EstimateOutcome",
    "EstimationContext",
    "Estimator",
    "EvaluationReport",
    "ExactEstimator",
    "Explanation",
    "ForallBounds",
    "HybridEstimator",
    "MiningStats",
    "ObjectProbability",
    "PCNNEntry",
    "PCNNResult",
    "PossibleTrajectory",
    "QUERY_MODES",
    "Query",
    "QueryEngine",
    "QueryPlan",
    "QueryRequest",
    "QueryResult",
    "RawProbabilities",
    "ReverseNNResult",
    "SampledEstimator",
    "WorldBudgetExceeded",
    "WorldCache",
    "WorldSegment",
    "bounds_partition",
    "build_plan",
    "decide_with_bounds",
    "domination_probability",
    "enumerate_consistent_trajectories",
    "exact_forall_nn_over_times",
    "exact_nn_probabilities",
    "exact_reverse_nn_probabilities",
    "forall_nn_bounds",
    "make_estimator",
    "mine_timestamp_sets",
    "normalize_times",
    "snapshot_nn_probability_at",
    "snapshot_probabilities",
    "union_window",
]
