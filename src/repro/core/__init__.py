"""Query semantics, engines and oracles (the paper's primary contribution)."""

from .apriori import AprioriBudgetExceeded, MiningStats, mine_timestamp_sets
from .bounds import ForallBounds, decide_with_bounds, forall_nn_bounds
from .evaluator import QueryEngine
from .exact import (
    PossibleTrajectory,
    WorldBudgetExceeded,
    domination_probability,
    enumerate_consistent_trajectories,
    exact_forall_nn_over_times,
    exact_nn_probabilities,
)
from .queries import Query, QueryRequest, normalize_times, union_window
from .results import ObjectProbability, PCNNEntry, PCNNResult, QueryResult
from .snapshot import snapshot_nn_probability_at, snapshot_probabilities
from .worlds import WorldCache, WorldSegment

__all__ = [
    "AprioriBudgetExceeded",
    "ForallBounds",
    "MiningStats",
    "ObjectProbability",
    "PCNNEntry",
    "PCNNResult",
    "PossibleTrajectory",
    "Query",
    "QueryEngine",
    "QueryRequest",
    "QueryResult",
    "WorldBudgetExceeded",
    "WorldCache",
    "WorldSegment",
    "decide_with_bounds",
    "domination_probability",
    "enumerate_consistent_trajectories",
    "exact_forall_nn_over_times",
    "exact_nn_probabilities",
    "forall_nn_bounds",
    "mine_timestamp_sets",
    "normalize_times",
    "snapshot_nn_probability_at",
    "snapshot_probabilities",
    "union_window",
]
