"""Result containers for the probabilistic query engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ObjectProbability", "PCNNEntry", "QueryResult", "PCNNResult"]


@dataclass(frozen=True)
class ObjectProbability:
    """One qualifying object with its estimated probability."""

    object_id: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0 + 1e-12:
            raise ValueError(f"probability out of range: {self.probability}")


@dataclass(frozen=True)
class PCNNEntry:
    """A PCNN answer element ``(o, T_i)`` with ``P∀NN(o, q, D, T_i) ≥ τ``."""

    object_id: str
    times: tuple[int, ...]
    probability: float

    def __post_init__(self) -> None:
        if list(self.times) != sorted(set(self.times)):
            raise ValueError("times must be sorted and duplicate-free")

    def runs(self) -> list[tuple[int, int]]:
        """Contiguous runs of the timestamp set.

        Definition 3 allows disconnected ``T_i``; this splits one into
        maximal consecutive intervals, e.g. ``(1,2,3,7,8) -> [(1,3), (7,8)]``.
        """
        out: list[tuple[int, int]] = []
        start = prev = self.times[0]
        for t in self.times[1:]:
            if t == prev + 1:
                prev = t
                continue
            out.append((start, prev))
            start = prev = t
        out.append((start, prev))
        return out

    def format_times(self) -> str:
        """Compact human-readable form, e.g. ``"1-3,7-8"`` or ``"5"``."""
        parts = []
        for lo, hi in self.runs():
            parts.append(str(lo) if lo == hi else f"{lo}-{hi}")
        return ",".join(parts)


@dataclass
class QueryResult:
    """Outcome of a P∃NNQ / P∀NNQ evaluation.

    ``results`` holds objects passing the threshold τ, sorted by descending
    probability; ``probabilities`` additionally keeps every refined object's
    estimate (useful for calibration studies and τ=0 experiments).
    """

    results: list[ObjectProbability]
    probabilities: dict[str, float]
    candidates: list[str]
    influencers: list[str]
    n_samples: int
    times: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))

    @property
    def n_candidates(self) -> int:
        """|C(q)| — the paper's candidate-count metric."""
        return len(self.candidates)

    @property
    def n_influencers(self) -> int:
        """|I(q)| — the paper's influence-object metric."""
        return len(self.influencers)

    def probability_of(self, object_id: str) -> float:
        """Estimated probability for a refined object (0.0 if pruned)."""
        return self.probabilities.get(str(object_id), 0.0)

    def object_ids(self) -> list[str]:
        return [r.object_id for r in self.results]


@dataclass
class PCNNResult:
    """Outcome of a PCNNQ evaluation."""

    entries: list[PCNNEntry]
    candidates: list[str]
    influencers: list[str]
    n_samples: int
    #: Total candidate timestamp sets evaluated across all objects — the
    #: "#Timestamp Sets" series of Figs. 13-14.
    sets_evaluated: int = 0

    def entries_for(self, object_id: str) -> list[PCNNEntry]:
        return [e for e in self.entries if e.object_id == str(object_id)]

    def maximal_entries(self) -> list[PCNNEntry]:
        """Condense to maximal timestamp sets per object (Definition 3's
        refined form): drop every set contained in a larger qualifying set
        of the same object."""
        out: list[PCNNEntry] = []
        by_object: dict[str, list[PCNNEntry]] = {}
        for entry in self.entries:
            by_object.setdefault(entry.object_id, []).append(entry)
        for object_id, entries in by_object.items():
            sets = [frozenset(e.times) for e in entries]
            for entry, s in zip(entries, sets):
                if not any(s < other for other in sets):
                    out.append(entry)
        return out

    def __len__(self) -> int:
        return len(self.entries)
