"""Result containers for the probabilistic query engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "EvaluationReport",
    "ObjectProbability",
    "PCNNEntry",
    "QueryResult",
    "PCNNResult",
    "RawProbabilities",
    "ReverseNNResult",
]


@dataclass
class EvaluationReport:
    """Observability record of one ``QueryEngine.evaluate`` run.

    Every result of the staged pipeline carries one; ``explain()`` returns
    the same structure as a *skeleton* (``executed=False``, zero timings,
    empty per-object assignments) so a serving layer can inspect what a
    request would cost before running it.

    ``estimator_by_object`` records how each *reported value* was
    obtained: ``"sampled"``/``"adaptive"`` (Monte-Carlo refinement),
    ``"exact"`` (world enumeration), ``"bounds:accepted"`` /
    ``"bounds:rejected"`` (conclusive Lemma 2 bounds — the stored value is
    then a *certified* lower/upper bound, not an estimate, so result
    ordering among bound-decided objects is by bound value, not true
    probability).  ``undecided`` lists objects a pure-``bounds`` run could
    not settle (the hybrid estimator estimates exactly these).
    ``sampled_objects`` counts influence objects drawn into worlds — the
    refinement *cost* — which on a hybrid run exceeds the number of
    ``"sampled"``-tagged candidates (every competitor must be drawn to
    estimate one undecided candidate).  Cache counters are deltas over
    this evaluation, matching the engine's
    :class:`~repro.core.worlds.WorldCache` accounting.
    """

    estimator: str
    resolved_estimator: str
    mode: str
    n_samples: int
    epsilon: float | None
    delta: float | None
    n_candidates: int
    n_influencers: int
    examined_entries: int
    # kNN depth of the request (defaulted so hand-built reports stay valid).
    k: int = 1
    # Execution-only fields default to skeleton values so explain() only
    # fills in what planning and filtering actually determine.
    stage_seconds: dict[str, float] = field(
        default_factory=lambda: {
            "plan": 0.0, "filter": 0.0, "estimate": 0.0, "threshold": 0.0
        }
    )
    sampled_objects: int = 0
    bounds_decided: int = 0
    undecided: tuple[str, ...] = ()
    estimator_by_object: dict[str, str] = field(default_factory=dict)
    cache_hits: int = 0
    cache_partial_hits: int = 0
    cache_misses: int = 0
    notes: tuple[str, ...] = ()
    executed: bool = True

    @property
    def total_seconds(self) -> float:
        """Wall-clock total across the recorded stages."""
        return float(sum(self.stage_seconds.values()))

    def as_dict(self) -> dict:
        """JSON-ready form (stage timings included; they are floats)."""
        return {
            "estimator": self.estimator,
            "resolved_estimator": self.resolved_estimator,
            "mode": self.mode,
            "k": self.k,
            "n_samples": self.n_samples,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "stage_seconds": dict(self.stage_seconds),
            "n_candidates": self.n_candidates,
            "n_influencers": self.n_influencers,
            "examined_entries": self.examined_entries,
            "sampled_objects": self.sampled_objects,
            "bounds_decided": self.bounds_decided,
            "undecided": list(self.undecided),
            "estimator_by_object": dict(self.estimator_by_object),
            "cache_hits": self.cache_hits,
            "cache_partial_hits": self.cache_partial_hits,
            "cache_misses": self.cache_misses,
            "notes": list(self.notes),
            "executed": self.executed,
        }


@dataclass(frozen=True)
class ObjectProbability:
    """One qualifying object with its estimated probability."""

    object_id: str
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0 + 1e-12:
            raise ValueError(f"probability out of range: {self.probability}")


@dataclass(frozen=True)
class PCNNEntry:
    """A PCNN answer element ``(o, T_i)`` with ``P∀NN(o, q, D, T_i) ≥ τ``."""

    object_id: str
    times: tuple[int, ...]
    probability: float

    def __post_init__(self) -> None:
        if list(self.times) != sorted(set(self.times)):
            raise ValueError("times must be sorted and duplicate-free")

    def runs(self) -> list[tuple[int, int]]:
        """Contiguous runs of the timestamp set.

        Definition 3 allows disconnected ``T_i``; this splits one into
        maximal consecutive intervals, e.g. ``(1,2,3,7,8) -> [(1,3), (7,8)]``.
        """
        out: list[tuple[int, int]] = []
        start = prev = self.times[0]
        for t in self.times[1:]:
            if t == prev + 1:
                prev = t
                continue
            out.append((start, prev))
            start = prev = t
        out.append((start, prev))
        return out

    def format_times(self) -> str:
        """Compact human-readable form, e.g. ``"1-3,7-8"`` or ``"5"``."""
        parts = []
        for lo, hi in self.runs():
            parts.append(str(lo) if lo == hi else f"{lo}-{hi}")
        return ",".join(parts)


@dataclass
class QueryResult:
    """Outcome of a P∃NNQ / P∀NNQ evaluation.

    ``results`` holds objects passing the threshold τ, sorted by descending
    probability; ``probabilities`` additionally keeps every refined object's
    estimate (useful for calibration studies and τ=0 experiments).
    """

    results: list[ObjectProbability]
    probabilities: dict[str, float]
    candidates: list[str]
    influencers: list[str]
    n_samples: int
    times: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    #: Pipeline observability record (None for hand-built results).
    report: EvaluationReport | None = None

    @property
    def n_candidates(self) -> int:
        """|C(q)| — the paper's candidate-count metric."""
        return len(self.candidates)

    @property
    def n_influencers(self) -> int:
        """|I(q)| — the paper's influence-object metric."""
        return len(self.influencers)

    def probability_of(self, object_id: str) -> float:
        """Estimated probability for a refined object (0.0 if pruned)."""
        return self.probabilities.get(str(object_id), 0.0)

    def object_ids(self) -> list[str]:
        return [r.object_id for r in self.results]


@dataclass
class PCNNResult:
    """Outcome of a PCNNQ evaluation."""

    entries: list[PCNNEntry]
    candidates: list[str]
    influencers: list[str]
    n_samples: int
    #: Total candidate timestamp sets evaluated across all objects — the
    #: "#Timestamp Sets" series of Figs. 13-14.
    sets_evaluated: int = 0
    #: Pipeline observability record (None for hand-built results).
    report: EvaluationReport | None = None

    def entries_for(self, object_id: str) -> list[PCNNEntry]:
        return [e for e in self.entries if e.object_id == str(object_id)]

    def maximal_entries(self) -> list[PCNNEntry]:
        """Condense to maximal timestamp sets per object (Definition 3's
        refined form): drop every set contained in a larger qualifying set
        of the same object."""
        out: list[PCNNEntry] = []
        by_object: dict[str, list[PCNNEntry]] = {}
        for entry in self.entries:
            by_object.setdefault(entry.object_id, []).append(entry)
        for object_id, entries in by_object.items():
            sets = [frozenset(e.times) for e in entries]
            for entry, s in zip(entries, sets):
                if not any(s < other for other in sets):
                    out.append(entry)
        return out

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class ReverseNNResult:
    """Outcome of a ``mode="reverse_nn"`` evaluation (reverse P-kNN).

    The transposed question: per object ``o``, the probability that the
    *query* is among ``o``'s ``k`` nearest neighbors.  ``results`` holds
    the objects whose ``P∀`` value (query in their kNN set at *every* time
    of ``T``) passes τ, sorted by descending probability; ``probabilities``
    keeps every refined object's ``P∀`` estimate and ``exists`` the
    companion ``P∃`` values (query in the kNN set at *some* time) from the
    same worlds.
    """

    results: list[ObjectProbability]
    probabilities: dict[str, float]
    exists: dict[str, float]
    candidates: list[str]
    influencers: list[str]
    n_samples: int
    k: int = 1
    times: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    #: Pipeline observability record (None for hand-built results).
    report: EvaluationReport | None = None

    @property
    def n_candidates(self) -> int:
        return len(self.candidates)

    @property
    def n_influencers(self) -> int:
        return len(self.influencers)

    def probability_of(self, object_id: str) -> float:
        """Estimated ``P∀`` for a refined object (0.0 if pruned)."""
        return self.probabilities.get(str(object_id), 0.0)

    def as_dict(self) -> dict[str, tuple[float, float]]:
        """``oid -> (P∀, P∃)``, mirroring :meth:`RawProbabilities.as_dict`."""
        return {
            oid: (self.probabilities[oid], self.exists[oid])
            for oid in self.probabilities
        }

    def object_ids(self) -> list[str]:
        return [r.object_id for r in self.results]


@dataclass
class RawProbabilities:
    """Outcome of a ``mode="raw"`` evaluation: threshold-free estimates.

    Per refined object, the (P∀kNN, P∃kNN) pair — the calibration access
    path (Fig. 11) that :meth:`QueryEngine.nn_probabilities` exposes as a
    plain dict via :meth:`as_dict`.
    """

    forall: dict[str, float]
    exists: dict[str, float]
    candidates: list[str]
    influencers: list[str]
    n_samples: int
    times: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    #: Pipeline observability record (None for hand-built results).
    report: EvaluationReport | None = None

    def as_dict(self) -> dict[str, tuple[float, float]]:
        """The legacy ``nn_probabilities`` shape: ``oid -> (P∀, P∃)``."""
        return {oid: (self.forall[oid], self.exists[oid]) for oid in self.forall}

    def __len__(self) -> int:
        return len(self.forall)
