"""Exact PNN evaluation at validation scale.

Two oracles back-stop the sampling engine in tests and calibration studies:

* **Possible-world enumeration** — materialize every observation-consistent
  trajectory of every object with its probability (Example 1 of the paper),
  then aggregate over the cartesian product of worlds.  Exponential, guarded
  by explicit budgets; this is exactly the computation Sections 4.1-4.2
  prove infeasible in general.
* **Pairwise domination** (Lemma 2) — ``P(o ≺_q^T o_a)`` via the joint
  chain of the two objects on ``S × S``, zeroing non-dominating entries at
  every query time.  Polynomial, and exact for two-object databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from ..markov.adaptation import AdaptedModel
from ..markov.chain import TransitionModel
from ..trajectory.database import TrajectoryDatabase
from .queries import Query, normalize_times

__all__ = [
    "WorldBudgetExceeded",
    "PossibleTrajectory",
    "enumerate_consistent_trajectories",
    "exact_nn_probabilities",
    "exact_reverse_nn_probabilities",
    "exact_forall_nn_over_times",
    "domination_probability",
]


class WorldBudgetExceeded(RuntimeError):
    """Enumeration would exceed the configured budget of possible worlds."""


@dataclass(frozen=True)
class PossibleTrajectory:
    """One observation-consistent trajectory and its probability."""

    states: tuple[int, ...]
    probability: float


def enumerate_consistent_trajectories(
    chain: TransitionModel,
    observations: list[tuple[int, int]],
    max_paths: int = 100_000,
    extend_to: int | None = None,
) -> list[PossibleTrajectory]:
    """All a-priori paths hitting every observation, with probabilities.

    Probabilities are conditioned on consistency (normalized over the
    surviving paths) — i.e. the exact a-posteriori trajectory distribution
    that Algorithm 2 samples from.  ``extend_to`` continues paths past the
    last observation unconditioned (Example 1 semantics).
    """
    obs = sorted((int(t), int(s)) for t, s in observations)
    if not obs:
        raise ValueError("need at least one observation")
    t_first, s_first = obs[0]
    t_last = obs[-1][0]
    if extend_to is not None and int(extend_to) > t_last:
        t_last = int(extend_to)
    by_time = dict(obs)

    paths: list[tuple[tuple[int, ...], float]] = [((s_first,), 1.0)]
    for t in range(t_first + 1, t_last + 1):
        matrix = chain.matrix_at(t - 1)
        nxt: list[tuple[tuple[int, ...], float]] = []
        must_be = by_time.get(t)
        for states, prob in paths:
            row = matrix.getrow(states[-1])
            for state, p in zip(row.indices, row.data):
                if must_be is not None and state != must_be:
                    continue
                nxt.append((states + (int(state),), prob * float(p)))
        if len(nxt) > max_paths:
            raise WorldBudgetExceeded(
                f"more than {max_paths} consistent paths at time {t}"
            )
        paths = nxt
        if not paths:
            raise ValueError(f"observations contradict the chain at time {t}")
    total = sum(p for _, p in paths)
    return [PossibleTrajectory(states, p / total) for states, p in paths]


def _trajectory_sets(
    db: TrajectoryDatabase,
    object_ids: list[str],
    max_paths: int,
) -> dict[str, list[PossibleTrajectory]]:
    return {
        oid: enumerate_consistent_trajectories(
            db.get(oid).chain,
            db.get(oid).observations.as_pairs(),
            max_paths,
            extend_to=db.get(oid).extend_to,
        )
        for oid in object_ids
    }


def exact_nn_probabilities(
    db: TrajectoryDatabase,
    q: Query,
    times,
    k: int = 1,
    max_worlds: int = 1_000_000,
    max_paths: int = 100_000,
) -> dict[str, tuple[float, float]]:
    """Exact ``(P∀kNN, P∃kNN)`` per object by world enumeration.

    Every object overlapping ``T`` participates; objects are combined under
    the independence assumption (probability of a world is the product of
    its trajectories' probabilities, Example 1).
    """
    times = normalize_times(times)
    objects = db.objects_overlapping(times)
    ids = [o.object_id for o in objects]
    traj_sets = _trajectory_sets(db, ids, max_paths)

    n_worlds = 1
    for oid in ids:
        n_worlds *= len(traj_sets[oid])
        if n_worlds > max_worlds:
            raise WorldBudgetExceeded(
                f"database induces more than {max_worlds} possible worlds"
            )

    q_coords = q.coords_at(times)
    # Precompute, per object and per possible trajectory, its distance to q
    # at each query time (inf while not alive).
    dists: dict[str, list[np.ndarray]] = {}
    for oid in ids:
        obj = db.get(oid)
        alive = obj.alive_during(times)
        rows = []
        for ptraj in traj_sets[oid]:
            row = np.full(times.size, np.inf)
            if alive.any():
                alive_times = times[alive]
                states = np.asarray(ptraj.states, dtype=np.intp)[
                    alive_times - obj.t_first
                ]
                diff = db.space.coords_of(states) - q_coords[alive]
                row[alive] = np.sqrt(np.sum(diff * diff, axis=-1))
            rows.append(row)
        dists[oid] = rows

    p_forall = {oid: 0.0 for oid in ids}
    p_exists = {oid: 0.0 for oid in ids}
    choices = [range(len(traj_sets[oid])) for oid in ids]
    for combo in product(*choices):
        w_prob = 1.0
        for oid, idx in zip(ids, combo):
            w_prob *= traj_sets[oid][idx].probability
        dist_matrix = np.stack([dists[oid][idx] for oid, idx in zip(ids, combo)])
        closer = np.sum(
            dist_matrix[None, :, :] < dist_matrix[:, None, :], axis=1
        )
        is_nn = (closer < k) & np.isfinite(dist_matrix)
        for row, oid in enumerate(ids):
            if is_nn[row].all():
                p_forall[oid] += w_prob
            if is_nn[row].any():
                p_exists[oid] += w_prob
    return {oid: (p_forall[oid], p_exists[oid]) for oid in ids}


def exact_reverse_nn_probabilities(
    db: TrajectoryDatabase,
    q: Query,
    times,
    k: int = 1,
    max_worlds: int = 1_000_000,
    max_paths: int = 100_000,
) -> dict[str, tuple[float, float]]:
    """Exact reverse-PkNN ``(P∀, P∃)`` per object by world enumeration.

    The reverse direction of :func:`exact_nn_probabilities`: per object
    ``o``, the probability that the *query* is among ``o``'s ``k`` nearest
    neighbors — competitors being the other alive objects, a competitor
    counting only when *strictly* closer to ``o`` than the query (mirror of
    the forward closer-count rule).  ``P∀`` requires membership at every
    query time (an object dead at some ``t ∈ T`` cannot qualify, exactly as
    in the forward direction), ``P∃`` at some time; same independence
    assumption, same budgets.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    times = normalize_times(times)
    objects = db.objects_overlapping(times)
    ids = [o.object_id for o in objects]
    traj_sets = _trajectory_sets(db, ids, max_paths)

    n_worlds = 1
    for oid in ids:
        n_worlds *= len(traj_sets[oid])
        if n_worlds > max_worlds:
            raise WorldBudgetExceeded(
                f"database induces more than {max_worlds} possible worlds"
            )

    q_coords = q.coords_at(times)
    dim = q_coords.shape[1]
    # Per object: alive mask over T, and per possible trajectory its
    # coordinates at the query times (NaN while not alive — masked out below).
    alive_masks: dict[str, np.ndarray] = {}
    coords_sets: dict[str, list[np.ndarray]] = {}
    for oid in ids:
        obj = db.get(oid)
        alive = obj.alive_during(times)
        alive_masks[oid] = alive
        rows = []
        for ptraj in traj_sets[oid]:
            row = np.full((times.size, dim), np.nan)
            if alive.any():
                alive_times = times[alive]
                states = np.asarray(ptraj.states, dtype=np.intp)[
                    alive_times - obj.t_first
                ]
                row[alive] = db.space.coords_of(states)
            rows.append(row)
        coords_sets[oid] = rows

    alive_m = np.stack([alive_masks[oid] for oid in ids])  # (O, T)
    p_forall = {oid: 0.0 for oid in ids}
    p_exists = {oid: 0.0 for oid in ids}
    choices = [range(len(traj_sets[oid])) for oid in ids]
    n_objects = len(ids)
    for combo in product(*choices):
        w_prob = 1.0
        for oid, idx in zip(ids, combo):
            w_prob *= traj_sets[oid][idx].probability
        pos = np.stack(
            [coords_sets[oid][idx] for oid, idx in zip(ids, combo)]
        )  # (O, T, d)
        with np.errstate(invalid="ignore"):
            qd = np.sqrt(np.sum((pos - q_coords[None]) ** 2, axis=-1))
            od = np.sqrt(
                np.sum((pos[:, None] - pos[None, :]) ** 2, axis=-1)
            )  # od[a, o, t] = d(a(t), o(t))
        qd[~alive_m] = np.inf
        od[~alive_m[:, None, :] | ~alive_m[None, :, :]] = np.inf
        od[np.arange(n_objects), np.arange(n_objects), :] = np.inf
        closer = np.sum(od < qd[None, :, :], axis=0)  # (O, T)
        is_rev = (closer < k) & alive_m
        for row, oid in enumerate(ids):
            if is_rev[row].all():
                p_forall[oid] += w_prob
            if is_rev[row].any():
                p_exists[oid] += w_prob
    return {oid: (p_forall[oid], p_exists[oid]) for oid in ids}


def exact_forall_nn_over_times(
    db: TrajectoryDatabase,
    q: Query,
    times,
    max_worlds: int = 1_000_000,
    max_paths: int = 100_000,
    *,
    k: int = 1,
) -> dict[str, dict[tuple[int, ...], float]]:
    """Exact ``P∀kNN(o, q, D, T_i)`` for *every* subset ``T_i ⊆ T``.

    The exact counterpart of PCNN mining; exponential in ``|T|`` on top of
    world enumeration, so strictly a validation tool.  ``k`` is
    keyword-only, appended after the original signature so existing
    positional ``max_worlds``/``max_paths`` callers keep their meaning.
    """
    times = normalize_times(times)
    base = exact_nn_probabilities(
        db, q, times, k=k, max_worlds=max_worlds, max_paths=max_paths
    )
    ids = list(base)

    out: dict[str, dict[tuple[int, ...], float]] = {oid: {} for oid in ids}
    n = times.size
    for mask in range(1, 2**n):
        subset = tuple(int(times[i]) for i in range(n) if mask >> i & 1)
        sub = exact_nn_probabilities(
            db, q, subset, k=k, max_worlds=max_worlds, max_paths=max_paths
        )
        for oid in ids:
            if oid in sub:
                out[oid][subset] = sub[oid][0]
    return out


def domination_probability(
    model_o: AdaptedModel,
    model_oa: AdaptedModel,
    q: Query,
    times,
    coords: np.ndarray,
) -> float:
    """Lemma 2: ``P(o ≺_q^T o_a)`` via the joint a-posteriori chain.

    Treats ``(o, o_a)`` as one stochastic process on ``S × S`` (independent
    components), walks it across ``[min T, max T]`` and zeroes every joint
    state violating ``d(q(t), o(t)) ≤ d(q(t), o_a(t))`` at each ``t ∈ T``.
    The surviving mass is the domination probability — computed in
    polynomial time, unlike the full ``P∀NN``.
    """
    times = normalize_times(times)
    t_lo, t_hi = int(times.min()), int(times.max())
    for model in (model_o, model_oa):
        if not (model.covers(t_lo) and model.covers(t_hi)):
            raise KeyError("both objects must cover the query interval")
    query_times = set(int(t) for t in times)
    q_coords = {int(t): c for t, c in zip(times, q.coords_at(times))}

    def distances(t: int, states: np.ndarray) -> np.ndarray:
        diff = coords[states] - q_coords[t]
        return np.sqrt(np.sum(diff * diff, axis=-1))

    # Joint distribution as a dict (state_o, state_oa) -> probability.
    dist_o = model_o.posterior(t_lo)
    dist_oa = model_oa.posterior(t_lo)
    joint: dict[tuple[int, int], float] = {}
    for i, pi in zip(dist_o.states, dist_o.probs):
        for j, pj in zip(dist_oa.states, dist_oa.probs):
            joint[(int(i), int(j))] = float(pi * pj)

    def constrain(t: int, current: dict[tuple[int, int], float]) -> dict:
        if t not in query_times:
            return current
        states_i = np.asarray([key[0] for key in current], dtype=np.intp)
        states_j = np.asarray([key[1] for key in current], dtype=np.intp)
        d_i = distances(t, states_i)
        d_j = distances(t, states_j)
        keep = d_i <= d_j
        return {
            key: p for key, p, ok in zip(current, current.values(), keep) if ok
        }

    joint = constrain(t_lo, joint)
    for t in range(t_lo, t_hi):
        nxt: dict[tuple[int, int], float] = {}
        for (i, j), p in joint.items():
            nxt_i, probs_i = model_o.transition_row(t, i)
            nxt_j, probs_j = model_oa.transition_row(t, j)
            for a, pa in zip(nxt_i, probs_i):
                for b, pb in zip(nxt_j, probs_j):
                    key = (int(a), int(b))
                    nxt[key] = nxt.get(key, 0.0) + p * float(pa * pb)
        joint = constrain(t + 1, nxt)
    return float(sum(joint.values()))
