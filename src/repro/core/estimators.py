"""Pluggable estimation strategies for the ``evaluate()`` pipeline.

The estimate stage of the pipeline (plan → filter → **estimate** →
threshold) is a strategy object: given the filter stage's candidate and
influence sets, produce per-object probability estimates (or mined PCNN
timestamp sets).  Five strategies ship, selected per request via
``QueryRequest(estimator=...)``:

``"sampled"``
    The paper's Monte-Carlo refinement (Section 5): sample every influence
    object into possible worlds, count.  The default, and the only
    strategy guaranteed bit-identical to the pre-pipeline engine.
``"exact"``
    The possible-world enumeration oracle (:mod:`repro.core.exact`) —
    exponential, budget-guarded, for validation-scale instances.
``"bounds"``
    Decide the P∀NN threshold from the PTIME Lemma 2 domination bounds
    alone (:mod:`repro.core.bounds`), *without sampling*.  Objects whose
    bounds straddle τ stay undecided (reported, not estimated).
``"hybrid"``
    Bounds first, Monte-Carlo only for the undecided rest — the §4.2+§5
    fast path.  When the bounds settle every candidate, refinement is
    skipped entirely (zero objects sampled).
``"adaptive"``
    The sampled strategy with its world count sized by Hoeffding's
    inequality from the request's ``precision=(epsilon, delta)`` target
    (Section 5.2.3) instead of a fixed engine-wide ``n_samples``.

Strategies report *how* each probability was obtained
(``estimator_by_object``) so the :class:`~repro.core.results.
EvaluationReport` can distinguish certified bounds from estimates.

Every sampling strategy reaches refinement through
:meth:`EstimationContext.refinement_distances`, which hands the *whole*
candidate set to the engine as one columnar batch — on a ``fused`` engine
that is a single :mod:`~repro.markov.arena` pass plus one fused distance
kernel, never a per-object loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..trajectory.nn import (
    exists_knn_prob,
    forall_knn_prob,
    knn_indicator,
    nn_indicator,
    reverse_knn_indicator,
)
from .apriori import mine_timestamp_sets
from .bounds import bounds_partition
from .exact import (
    exact_forall_nn_over_times,
    exact_nn_probabilities,
    exact_reverse_nn_probabilities,
)
from .planner import QueryPlan
from .queries import ESTIMATOR_NAMES, QueryRequest
from .results import PCNNEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spatial.ust_tree import PruningResult
    from .evaluator import QueryEngine

__all__ = [
    "ESTIMATORS",
    "EstimationContext",
    "EstimateOutcome",
    "Estimator",
    "SampledEstimator",
    "ExactEstimator",
    "BoundsEstimator",
    "HybridEstimator",
    "AdaptiveEstimator",
    "make_estimator",
]


@dataclass
class EstimationContext:
    """Everything an estimator may consult: engine, request, filter output.

    ``times`` is the canonical normalized array; ``result_ids`` the objects
    eligible to appear in the final result (candidates for P∀NN, influence
    objects otherwise); ``refine_ids`` the influence objects that would
    need sampling.
    """

    engine: "QueryEngine"
    request: QueryRequest
    plan: QueryPlan
    times: np.ndarray
    pruning: "PruningResult"
    result_ids: list[str]
    refine_ids: list[str]

    def refinement_distances(self, n_samples: int | None = None) -> np.ndarray:
        """One shared world draw over the whole refine set.

        The single entry point every sampling strategy uses to reach the
        engine's refinement kernel: the candidate set goes down as one
        columnar batch (one fused arena pass + one gather/einsum distance
        kernel on a ``fused`` engine) rather than per-object calls, so
        strategies cannot accidentally fall off the bulk path.

        Shared-world evaluations on an incremental engine may be served
        from the engine's refinement tensor cache — the identical request
        re-asked over held worlds gets the *same array* back with only the
        dirty objects' columns recomputed (see ``QueryEngine.
        refine_cache_size``).  The tensor is therefore owned by the
        engine: estimators must treat it as **read-only** (every counting
        reduction in :mod:`repro.trajectory.nn` already is) — writing into
        it would corrupt later ticks' patched reuse.
        """
        return self.engine.distance_tensor(
            self.refine_ids,
            self.request.query,
            self.times,
            n_samples=self.plan.n_samples if n_samples is None else n_samples,
            normalized=True,
            cache_k=self.request.k,
        )

    def reverse_distances(
        self, n_samples: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shared draw serving the *reverse* direction: ``(dist, od)``.

        The reverse sibling of :meth:`refinement_distances` — one sampled
        states block per call yields both the query-distance tensor and
        the inter-object tensor ``od[w, a, o, t]``, so reverse estimation
        never re-samples per object (and, inside a shared epoch, reads
        the very worlds a forward refinement over the same objects would).
        """
        return self.engine.reverse_distance_tensors(
            self.refine_ids,
            self.request.query,
            self.times,
            n_samples=self.plan.n_samples if n_samples is None else n_samples,
            normalized=True,
            cache_k=self.request.k,
        )


@dataclass
class EstimateOutcome:
    """What an estimator hands back to the threshold stage.

    ``probabilities`` maps object id to the mode's primary value (P∀kNN
    for ``forall``/``raw``, P∃kNN for ``exists``, reverse-P∀kNN for
    ``reverse_nn``); ``exists_probabilities`` carries the second component
    of ``raw`` and ``reverse_nn`` evaluations; ``entries`` the mined sets
    of ``pcnn`` evaluations.  ``sampled_objects`` counts objects
    that went through Monte-Carlo refinement — the quantity the hybrid
    estimator exists to reduce.
    """

    probabilities: dict[str, float] = field(default_factory=dict)
    exists_probabilities: dict[str, float] | None = None
    entries: list[PCNNEntry] | None = None
    sets_evaluated: int = 0
    n_samples_used: int = 0
    sampled_objects: int = 0
    estimator_by_object: dict[str, str] = field(default_factory=dict)
    undecided: tuple[str, ...] = ()
    notes: tuple[str, ...] = ()


class Estimator:
    """Estimation-strategy interface: one :meth:`estimate` call per query."""

    #: Registry key; also recorded per object in the evaluation report.
    name = "abstract"

    def estimate(self, ctx: EstimationContext) -> EstimateOutcome:
        """Produce the estimate stage's outcome for one planned request."""
        raise NotImplementedError

    def run(self, ctx: EstimationContext) -> EstimateOutcome:
        """:meth:`estimate` wrapped in telemetry (the pipeline entry point).

        With the default :class:`~repro.obs.NullTracer` and no registry
        this is a plain delegation; otherwise the strategy gets its own
        child span under the estimate stage plus per-strategy counters.
        Pure observation — the outcome bytes are identical either way.
        """
        engine = ctx.engine
        tracer = engine.tracer
        metrics = engine.metrics
        if not tracer.enabled and metrics is None:
            return self.estimate(ctx)
        with tracer.span(f"estimator:{self.name}") as span:
            outcome = self.estimate(ctx)
            span.set(
                n_samples_used=outcome.n_samples_used,
                sampled_objects=outcome.sampled_objects,
                undecided=outcome.undecided,
            )
        if metrics is not None:
            metrics.counter(
                "estimator_runs_total",
                help="Estimate-stage executions, by strategy.",
                labels={"estimator": self.name},
            ).inc()
            if outcome.sampled_objects:
                metrics.counter(
                    "estimator_sampled_objects_total",
                    help="Objects refined by Monte-Carlo sampling, "
                    "by strategy.",
                    labels={"estimator": self.name},
                ).inc(outcome.sampled_objects)
        return outcome


class SampledEstimator(Estimator):
    """Monte-Carlo refinement over all influence objects (Section 5).

    Exactly the pre-pipeline engine's code path: one
    ``distance_tensor`` draw per query, then world counting — RNG
    consumption is bit-identical to the legacy entry points.
    """

    name = "sampled"

    def estimate(self, ctx: EstimationContext) -> EstimateOutcome:
        if not ctx.refine_ids:
            return EstimateOutcome(entries=[] if ctx.request.mode == "pcnn" else None)
        n = ctx.plan.n_samples
        tagged = {oid: self.name for oid in ctx.refine_ids}
        if ctx.request.mode == "reverse_nn":
            dist, object_dist = ctx.reverse_distances(n)
            indicator = reverse_knn_indicator(dist, object_dist, ctx.request.k)
            forall = indicator.all(axis=2).mean(axis=0)
            exists = indicator.any(axis=2).mean(axis=0)
            return EstimateOutcome(
                probabilities={
                    oid: float(p) for oid, p in zip(ctx.refine_ids, forall)
                },
                exists_probabilities={
                    oid: float(p) for oid, p in zip(ctx.refine_ids, exists)
                },
                n_samples_used=n,
                sampled_objects=len(ctx.refine_ids),
                estimator_by_object=tagged,
            )
        if ctx.request.mode == "forall":
            return EstimateOutcome(
                probabilities=_forall_refinement(ctx),
                n_samples_used=n,
                sampled_objects=len(ctx.refine_ids),
                estimator_by_object=tagged,
            )
        dist = ctx.refinement_distances(n)
        if ctx.request.mode == "pcnn":
            entries, sets_evaluated = _mine_entries(ctx, dist)
            return EstimateOutcome(
                entries=entries,
                sets_evaluated=sets_evaluated,
                n_samples_used=n,
                sampled_objects=len(ctx.refine_ids),
                estimator_by_object=tagged,
            )
        k = ctx.request.k
        if ctx.request.mode == "exists":
            primary = exists_knn_prob(dist, k)
            secondary = None
        else:  # raw: both components from the same worlds
            primary = forall_knn_prob(dist, k)
            secondary = exists_knn_prob(dist, k)
        probs = {oid: float(p) for oid, p in zip(ctx.refine_ids, primary)}
        exists_probs = (
            {oid: float(p) for oid, p in zip(ctx.refine_ids, secondary)}
            if secondary is not None
            else None
        )
        return EstimateOutcome(
            probabilities=probs,
            exists_probabilities=exists_probs,
            n_samples_used=n,
            sampled_objects=len(ctx.refine_ids),
            estimator_by_object=tagged,
        )


class AdaptiveEstimator(SampledEstimator):
    """Sampled refinement at the Hoeffding-implied world count.

    Identical machinery to :class:`SampledEstimator`; the planner has
    already replaced the fixed ``n_samples`` with
    ``ceil(ln(2/δ) / (2 ε²))`` from the request's precision target, and
    the report carries the achieved radius.
    """

    name = "adaptive"


class ExactEstimator(Estimator):
    """Possible-world enumeration oracle (budget-guarded, small instances).

    Raises :class:`~repro.core.exact.WorldBudgetExceeded` when the database
    induces more than the request's ``max_worlds`` worlds (or ``max_paths``
    consistent paths per object) — exactness is opt-in, never silent
    approximation; raise the budgets per request when an instance needs it.
    """

    name = "exact"

    def estimate(self, ctx: EstimationContext) -> EstimateOutcome:
        db, q = ctx.engine.db, ctx.request.query
        if ctx.request.mode == "pcnn":
            # tau > 0 is guaranteed by build_plan (fails at plan time).
            tables = exact_forall_nn_over_times(
                db,
                q,
                ctx.times,
                k=ctx.request.k,
                max_worlds=ctx.request.max_worlds,
                max_paths=ctx.request.max_paths,
            )
            entries: list[PCNNEntry] = []
            sets_evaluated = 0
            for oid in ctx.refine_ids:
                table = tables.get(oid, {})
                sets_evaluated += len(table)
                for subset, p in table.items():
                    if p >= ctx.request.tau:
                        entries.append(PCNNEntry(oid, subset, p))
            return EstimateOutcome(
                entries=entries,
                sets_evaluated=sets_evaluated,
                estimator_by_object={oid: self.name for oid in ctx.refine_ids},
            )
        oracle = (
            exact_reverse_nn_probabilities
            if ctx.request.mode == "reverse_nn"
            else exact_nn_probabilities
        )
        exact = oracle(
            db,
            q,
            ctx.times,
            k=ctx.request.k,
            max_worlds=ctx.request.max_worlds,
            max_paths=ctx.request.max_paths,
        )
        component = 0 if ctx.request.mode in ("forall", "raw", "reverse_nn") else 1
        probs = {oid: exact[oid][component] for oid in ctx.refine_ids}
        exists_probs = (
            {oid: exact[oid][1] for oid in ctx.refine_ids}
            if ctx.request.mode in ("raw", "reverse_nn")
            else None
        )
        return EstimateOutcome(
            probabilities=probs,
            exists_probabilities=exists_probs,
            estimator_by_object={oid: self.name for oid in ctx.refine_ids},
        )


def _forall_refinement(ctx: EstimationContext) -> dict[str, float]:
    """One shared world draw over all influence objects, counted with the
    ∀ semantics — the single refinement path behind both the sampled and
    hybrid estimators, so their estimates cannot drift apart."""
    probs = forall_knn_prob(ctx.refinement_distances(), ctx.request.k)
    return {oid: float(p) for oid, p in zip(ctx.refine_ids, probs)}


def _bounds_verdicts(
    ctx: EstimationContext,
) -> tuple[dict[str, float], dict[str, str], list[str]]:
    """Lemma 2 verdicts for every candidate: values, tags, undecided ids.

    Delegates to :func:`repro.core.bounds.bounds_partition` with the
    competitors restricted to the filter step's influence set.  Accepted
    candidates are stored at their certified *lower* bound (≥ τ by
    construction), rejected ones at their certified *upper* bound (< τ).
    """
    bounds, accepted, rejected, undecided = bounds_partition(
        ctx.engine.db,
        ctx.request.query,
        ctx.times,
        ctx.request.tau,
        ctx.result_ids,
        ctx.refine_ids,
    )
    values: dict[str, float] = {}
    tags: dict[str, str] = {}
    for oid in accepted:
        values[oid] = bounds[oid].lower
        tags[oid] = "bounds:accepted"
    for oid in rejected:
        values[oid] = bounds[oid].upper
        tags[oid] = "bounds:rejected"
    return values, tags, undecided


class BoundsEstimator(Estimator):
    """Decide τ from the PTIME Lemma 2 bounds alone — no sampling, ever.

    Only P∀NN with ``k=1`` (enforced at plan time).  Candidates whose
    bounds straddle τ are left *undecided*: they appear in the report (and
    in ``EstimateOutcome.undecided``) but carry no probability — a caller
    needing them resolved should use ``estimator="hybrid"``.

    The τ-decision is certified, but the reported *values* are loose
    bounds (Fréchet lower bound for accepted, pairwise-min upper bound
    for rejected), so the descending-probability ordering of the result
    list may differ from the true probability ranking — consumers that
    need a faithful ranking among accepted objects should use a sampling
    estimator.
    """

    name = "bounds"

    def estimate(self, ctx: EstimationContext) -> EstimateOutcome:
        values, tags, undecided = _bounds_verdicts(ctx)
        notes = ()
        if undecided:
            notes = (
                f"{len(undecided)} candidate(s) undecided by bounds; "
                "use estimator='hybrid' to sample exactly these",
            )
        return EstimateOutcome(
            probabilities=values,
            estimator_by_object=tags,
            undecided=tuple(undecided),
            notes=notes,
        )


class HybridEstimator(Estimator):
    """Bounds first, Monte-Carlo refinement only for the undecided rest.

    The §4.2 + §5 fast path: conclusive candidates cost one PTIME bound
    computation instead of a refinement pass, and when *every* candidate
    is conclusive the query samples **zero** objects.  Refinement is
    all-or-nothing: a single undecided candidate triggers one shared
    world draw over *all* influence objects (the P∀NN of one object
    depends on every competitor), but only the undecided candidates are
    estimated from it — ``sampled_objects`` therefore counts drawn
    influence objects (the refinement *cost*), while
    ``estimator_by_object`` records value *provenance* for candidates
    only; the two deliberately do not add up.  Like the pure bounds
    estimator, bound-decided candidates carry loose certified bounds, so
    the result ordering can differ from the true probability ranking.
    That draw uses the same per-object world
    machinery as the pure sampled estimator, so two engines at the same
    seed whose query histories have sampled equally often produce
    bit-identical estimates for the undecided objects (per-object RNGs
    are derived from the epoch *and* the engine's count of prior direct
    draws — a hybrid query that sampled nothing does not advance that
    count, after which the two histories diverge by design).
    """

    name = "hybrid"

    def estimate(self, ctx: EstimationContext) -> EstimateOutcome:
        values, tags, undecided = _bounds_verdicts(ctx)
        n_samples_used = 0
        sampled_objects = 0
        if undecided and ctx.refine_ids:
            by_id = _forall_refinement(ctx)
            for oid in undecided:
                values[oid] = by_id[oid]
                tags[oid] = "sampled"
            n_samples_used = ctx.plan.n_samples
            sampled_objects = len(ctx.refine_ids)
        return EstimateOutcome(
            probabilities=values,
            n_samples_used=n_samples_used,
            sampled_objects=sampled_objects,
            estimator_by_object=tags,
            undecided=tuple(undecided),
        )


def _mine_entries(
    ctx: EstimationContext, dist: np.ndarray
) -> tuple[list[PCNNEntry], int]:
    """Algorithm 1 mining per refined object over a shared world draw."""
    k = ctx.request.k
    is_nn = knn_indicator(dist, k) if k > 1 else nn_indicator(dist)
    entries: list[PCNNEntry] = []
    sets_evaluated = 0
    for col, object_id in enumerate(ctx.refine_ids):
        mined, stats = mine_timestamp_sets(
            is_nn[:, col, :],
            ctx.times,
            ctx.request.tau,
            max_candidates=ctx.request.max_candidates,
            use_certain_shortcut=ctx.request.use_certain_shortcut,
        )
        sets_evaluated += stats.sets_evaluated
        for timeset, p in mined:
            entries.append(PCNNEntry(object_id, timeset, p))
    return entries, sets_evaluated


#: Strategy registry, keyed by the names ``QueryRequest`` accepts.
ESTIMATORS: dict[str, type[Estimator]] = {
    cls.name: cls
    for cls in (
        SampledEstimator,
        ExactEstimator,
        BoundsEstimator,
        HybridEstimator,
        AdaptiveEstimator,
    )
}
if set(ESTIMATORS) != set(ESTIMATOR_NAMES):  # pragma: no cover - import guard
    raise RuntimeError(
        "estimator registry out of sync with queries.ESTIMATOR_NAMES: "
        f"{sorted(ESTIMATORS)} != {sorted(ESTIMATOR_NAMES)}"
    )


def make_estimator(name: str) -> Estimator:
    """Instantiate the registered strategy for a resolved plan."""
    try:
        return ESTIMATORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; expected one of {ESTIMATOR_NAMES}"
        ) from None
