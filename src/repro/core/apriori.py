"""Apriori mining of PCNN timestamp sets (Algorithm 1).

``P∀NN`` is anti-monotonic in the timestamp set: adding times can only
lower the probability.  Algorithm 1 therefore mines qualifying sets
level-wise like frequent itemsets [27]: start from qualifying singletons,
join (k-1)-sets into k-sets whose every (k-1)-subset qualified, validate by
estimating ``P∀NN`` over a shared pool of sampled worlds.

Sharing one world pool across all candidate sets keeps the empirical
estimator itself anti-monotonic (an AND over more columns can only have
fewer satisfying worlds), so the level-wise pruning stays sound even with
sampled probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..trajectory.nn import forall_prob_over_times

__all__ = ["AprioriBudgetExceeded", "MiningStats", "mine_timestamp_sets"]


class AprioriBudgetExceeded(RuntimeError):
    """Candidate generation exceeded the configured budget.

    Section 4.3 warns that for small τ the result may contain an
    exponential number of sets (up to ``2^|T|``).  The budget turns a
    silent blow-up into an explicit error.
    """


@dataclass
class MiningStats:
    """Work/result counters for the Apriori run (Figs. 13-14 series)."""

    sets_evaluated: int = 0
    sets_qualifying: int = 0
    max_level_reached: int = 0


def mine_timestamp_sets(
    indicator: np.ndarray,
    times: np.ndarray,
    tau: float,
    max_candidates: int = 100_000,
    use_certain_shortcut: bool = False,
) -> tuple[list[tuple[tuple[int, ...], float]], MiningStats]:
    """Run Algorithm 1 for one object.

    Parameters
    ----------
    indicator:
        Boolean ``(worlds, |T|)`` matrix: was the object NN of ``q`` at each
        time in each sampled world?
    times:
        The actual timestamps labelling the columns.
    tau:
        Probability threshold; must be positive (``τ = 0`` would qualify
        all ``2^|T|`` subsets — exactly the blow-up Section 4.3 describes).
    max_candidates:
        Budget on validated candidate sets before aborting.
    use_certain_shortcut:
        Apply the § 4.3 speed-up: times with ``P∀NN = 1`` extend every
        qualifying set without changing its probability, so they are mined
        separately and unioned into each result.  With the shortcut on, the
        returned collection contains every *maximal* qualifying set but
        omits padded subsets of the certain times.

    Returns
    -------
    (results, stats)
        ``results`` holds ``(timestamp tuple, probability)`` pairs for every
        qualifying set that was materialized.
    """
    indicator = np.asarray(indicator, dtype=bool)
    times = np.asarray(times, dtype=np.intp)
    if indicator.ndim != 2 or indicator.shape[1] != times.size:
        raise ValueError("indicator must be (worlds, |T|) matching times")
    if not 0.0 < tau <= 1.0:
        raise ValueError("tau must be in (0, 1]; see Section 4.3 on tau -> 0")

    stats = MiningStats()
    n_cols = times.size
    col_probs = indicator.mean(axis=0)
    stats.sets_evaluated += n_cols

    certain_cols: tuple[int, ...] = ()
    if use_certain_shortcut:
        certain_cols = tuple(int(c) for c in np.flatnonzero(col_probs >= 1.0))

    mining_cols = [c for c in range(n_cols) if c not in set(certain_cols)]

    # L1: qualifying singletons over the mined columns.
    level: dict[tuple[int, ...], float] = {}
    for col in mining_cols:
        p = float(col_probs[col])
        if p >= tau:
            level[(col,)] = p
            stats.sets_qualifying += 1

    all_qualifying: dict[tuple[int, ...], float] = dict(level)
    k = 1
    while level:
        stats.max_level_reached = k
        k += 1
        candidates = _join(level, k)
        next_level: dict[tuple[int, ...], float] = {}
        for cand in candidates:
            if not _all_subsets_qualify(cand, level):
                continue
            stats.sets_evaluated += 1
            if stats.sets_evaluated > max_candidates:
                raise AprioriBudgetExceeded(
                    f"exceeded {max_candidates} candidate validations at level {k}; "
                    "raise the budget or increase tau"
                )
            p = forall_prob_over_times(indicator, np.asarray(cand))
            if p >= tau:
                next_level[cand] = p
                stats.sets_qualifying += 1
        all_qualifying.update(next_level)
        level = next_level

    results: list[tuple[tuple[int, ...], float]] = []
    if use_certain_shortcut and certain_cols:
        # Every qualifying mined set extends with the certain times at
        # unchanged probability; the certain set itself qualifies with P=1.
        base = tuple(int(times[c]) for c in certain_cols)
        results.append((base, 1.0))
        stats.sets_qualifying += 1
        for cols, p in all_qualifying.items():
            merged = tuple(sorted(int(times[c]) for c in cols + certain_cols))
            results.append((merged, p))
    else:
        for cols, p in all_qualifying.items():
            results.append((tuple(int(times[c]) for c in cols), p))
    results.sort(key=lambda item: (len(item[0]), item[0]))
    return results, stats


def _join(level: dict[tuple[int, ...], float], k: int) -> list[tuple[int, ...]]:
    """Apriori join: merge (k-1)-sets sharing their first k-2 columns."""
    keys = sorted(level)
    out: list[tuple[int, ...]] = []
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            if a[:-1] != b[:-1]:
                break
            out.append(a + (b[-1],))
    return out


def _all_subsets_qualify(
    candidate: tuple[int, ...], level: dict[tuple[int, ...], float]
) -> bool:
    """Anti-monotone check: every (k-1)-subset must be in the last level."""
    return all(sub in level for sub in combinations(candidate, len(candidate) - 1))
