"""Query reference objects: a certain state or a certain trajectory.

Section 3.2: all three PNN semantics take "a certain reference state or
trajectory q" — a query state being simply a trivial (constant) query
trajectory.  A :class:`Query` therefore exposes one operation: its location
at each requested time.  :class:`QueryRequest` bundles a query with its
semantics and parameters for the engine's batched API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..statespace.base import StateSpace
from ..trajectory.trajectory import Trajectory

__all__ = [
    "ESTIMATOR_NAMES",
    "QUERY_MODES",
    "Query",
    "QueryRequest",
    "normalize_times",
    "union_window",
]

#: Query semantics the engine evaluates: P∀kNNQ, P∃kNNQ, PCkNNQ, the
#: threshold-free ``"raw"`` form returning per-object (P∀kNN, P∃kNN) pairs
#: (the calibration access path of ``nn_probabilities``), and the reverse
#: direction ``"reverse_nn"`` — which objects have *the query* among their
#: k likely nearest neighbors (RkNN over possible worlds).
QUERY_MODES = ("forall", "exists", "pcnn", "raw", "reverse_nn")

#: Estimation strategies the planner accepts (the strategy classes live in
#: :mod:`repro.core.estimators`; ``tests`` assert the registry matches).
ESTIMATOR_NAMES = ("sampled", "exact", "bounds", "hybrid", "adaptive")


def normalize_times(times) -> np.ndarray:
    """Canonical form of a query time set ``T``: sorted unique int array."""
    arr = np.unique(np.asarray(list(times), dtype=np.intp))
    if arr.size == 0:
        raise ValueError("query time set T must be non-empty")
    return arr


def union_window(requests) -> tuple[int, int]:
    """``[t_lo, t_hi]`` covering every request's time set.

    This is the window a batch samples worlds over (window-restricted
    refinement): per-query time sets are slices of it, so one draw per
    object serves the whole batch no matter how the windows overlap.
    """
    t_lo: int | None = None
    t_hi: int | None = None
    for req in requests:
        lo, hi = req.window
        t_lo = lo if t_lo is None else min(t_lo, lo)
        t_hi = hi if t_hi is None else max(t_hi, hi)
    if t_lo is None or t_hi is None:
        raise ValueError("batch contains no query times")
    return int(t_lo), int(t_hi)


class Query:
    """A certain spatio-temporal reference for PNN queries.

    Construct via :meth:`from_state`, :meth:`from_point` or
    :meth:`from_trajectory`.
    """

    def __init__(self, kind: str, coords_at) -> None:
        self._kind = kind
        self._coords_at = coords_at

    # ------------------------------------------------------------------
    @classmethod
    def from_state(cls, space: StateSpace, state: int) -> "Query":
        """A static query at a state of the space (e.g. the bank's location)."""
        if not 0 <= state < space.n_states:
            raise ValueError(f"state {state} outside state space")
        point = space.coords[state].copy()

        def coords_at(times: np.ndarray) -> np.ndarray:
            return np.tile(point, (len(times), 1))

        return cls("state", coords_at)

    @classmethod
    def from_point(cls, coords) -> "Query":
        """A static query at an arbitrary location of ``R^d``."""
        point = np.asarray(coords, dtype=float)
        if point.ndim != 1:
            raise ValueError("query point must be a 1-d coordinate array")

        def coords_at(times: np.ndarray) -> np.ndarray:
            return np.tile(point, (len(times), 1))

        return cls("point", coords_at)

    @classmethod
    def from_coords(cls, coords) -> "Query":
        """A query given by precomputed per-time coordinates (one row each).

        The table must cover exactly the times the query is evaluated at,
        in call order.  This is the wire form of a query: the serving
        layer evaluates ``coords_at`` once coordinator-side and ships the
        resulting array to shard workers instead of pickling closures.
        """
        table = np.asarray(coords, dtype=float)
        if table.ndim != 2:
            raise ValueError("coords table must be 2-d (times x dims)")

        def coords_at(times: np.ndarray) -> np.ndarray:
            if len(times) != len(table):
                raise ValueError(
                    f"coords table covers {len(table)} times, "
                    f"got {len(times)}"
                )
            return table

        return cls("table", coords_at)

    @classmethod
    def from_trajectory(cls, trajectory: Trajectory, space: StateSpace) -> "Query":
        """A moving query following a certain trajectory (e.g. the robbers' car)."""

        def coords_at(times: np.ndarray) -> np.ndarray:
            times = np.asarray(times, dtype=np.intp)
            return space.coords_of(trajectory.states_at(times))

        return cls("trajectory", coords_at)

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._kind

    def coords_at(self, times: np.ndarray) -> np.ndarray:
        """Query locations, one row per requested time."""
        out = self._coords_at(np.asarray(times, dtype=np.intp))
        return np.asarray(out, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query(kind={self._kind!r})"


@dataclass(frozen=True)
class QueryRequest:
    """One self-contained query for ``QueryEngine.evaluate`` (and batches).

    ``mode`` selects the semantics: ``"forall"`` (P∀kNNQ), ``"exists"``
    (P∃kNNQ), ``"pcnn"`` (PCkNNQ — where ``tau`` is required to be
    meaningful, exactly as in :meth:`QueryEngine.continuous_nn`),
    ``"raw"`` (threshold-free per-object (P∀kNN, P∃kNN) estimates, the
    :meth:`QueryEngine.nn_probabilities` access path) or ``"reverse_nn"``
    (reverse probabilistic kNN: per object, the probability that the
    *query* is among the object's ``k`` nearest neighbors — at every time
    of ``T`` for the primary value, at some time for the secondary).

    ``k`` is the kNN depth shared by every mode (forward modes ask for
    membership in the query's k-nearest set, reverse mode for the query's
    membership in each object's k-nearest set).  It must be an integral
    value ``>= 1``; whether it also fits the evaluated database — ``k``
    may not exceed the filter stage's competitor pool — is checked by
    :meth:`QueryEngine.evaluate`, which knows the candidate counts.

    ``estimator`` picks the estimation strategy of the refinement stage
    (see :mod:`repro.core.estimators`); ``precision=(epsilon, delta)``
    states the Hoeffding target — required by ``estimator="adaptive"``
    (which sizes ``n_samples`` from it) and otherwise used to report the
    achieved confidence radius.  ``n_samples`` overrides the engine's
    per-query world count.  The trailing fields carry the PCNN mining
    options of :meth:`QueryEngine.continuous_nn` and the enumeration
    budgets of the ``"exact"`` estimator, so a request serializes the
    *complete* query.
    """

    query: Query
    times: tuple[int, ...]
    mode: str = "forall"
    tau: float = 0.0
    k: int = 1
    estimator: str = "sampled"
    precision: tuple[float, float] | None = None
    n_samples: int | None = None
    max_candidates: int = 100_000
    use_certain_shortcut: bool = False
    maximal_only: bool = False
    max_worlds: int = 1_000_000
    max_paths: int = 100_000

    def __post_init__(self) -> None:
        if self.mode not in QUERY_MODES:
            raise ValueError(f"unknown query mode {self.mode!r}")
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        # Mirror the empty-times check below: reject nonsense up front with
        # a descriptive message instead of letting it reach the kernels
        # (bools are ints but k=True is a bug, and a fractional k would
        # silently truncate in np.partition-based ranking).
        if isinstance(self.k, bool) or not isinstance(self.k, (int, np.integer)):
            raise ValueError(
                f"k must be an integer >= 1, got {self.k!r} "
                f"(type {type(self.k).__name__})"
            )
        if self.k < 1:
            raise ValueError(
                f"k must be >= 1, got {self.k} (the kNN depth counts "
                "nearest neighbors; there is no 0-th nearest neighbor)"
            )
        object.__setattr__(self, "k", int(self.k))
        times = tuple(int(t) for t in self.times)
        if not times:
            raise ValueError("query time set T must be non-empty")
        object.__setattr__(self, "times", times)
        if self.estimator not in ESTIMATOR_NAMES:
            raise ValueError(
                f"unknown estimator {self.estimator!r}; "
                f"expected one of {ESTIMATOR_NAMES}"
            )
        if self.precision is not None:
            try:
                epsilon, delta = self.precision
                epsilon, delta = float(epsilon), float(delta)
            except (TypeError, ValueError):
                raise ValueError(
                    "precision must be a numeric (epsilon, delta) pair"
                ) from None
            if not 0.0 < epsilon < 1.0:
                raise ValueError("precision epsilon must be in (0, 1)")
            if not 0.0 < delta < 1.0:
                raise ValueError("precision delta must be in (0, 1)")
            object.__setattr__(self, "precision", (epsilon, delta))
        elif self.estimator == "adaptive":
            raise ValueError(
                "estimator='adaptive' requires precision=(epsilon, delta)"
            )
        if self.n_samples is not None and self.n_samples < 1:
            raise ValueError("n_samples override must be positive")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be positive")
        if self.max_worlds < 1 or self.max_paths < 1:
            raise ValueError("enumeration budgets must be positive")

    @property
    def window(self) -> tuple[int, int]:
        """``[t_lo, t_hi]`` hull of this request's (non-empty) time set."""
        return min(self.times), max(self.times)
