"""Query reference objects: a certain state or a certain trajectory.

Section 3.2: all three PNN semantics take "a certain reference state or
trajectory q" — a query state being simply a trivial (constant) query
trajectory.  A :class:`Query` therefore exposes one operation: its location
at each requested time.  :class:`QueryRequest` bundles a query with its
semantics and parameters for the engine's batched API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..statespace.base import StateSpace
from ..trajectory.trajectory import Trajectory

__all__ = ["Query", "QueryRequest", "normalize_times", "union_window"]


def normalize_times(times) -> np.ndarray:
    """Canonical form of a query time set ``T``: sorted unique int array."""
    arr = np.unique(np.asarray(list(times), dtype=np.intp))
    if arr.size == 0:
        raise ValueError("query time set T must be non-empty")
    return arr


def union_window(requests) -> tuple[int, int]:
    """``[t_lo, t_hi]`` covering every request's time set.

    This is the window a batch samples worlds over (window-restricted
    refinement): per-query time sets are slices of it, so one draw per
    object serves the whole batch no matter how the windows overlap.
    """
    t_lo: int | None = None
    t_hi: int | None = None
    for req in requests:
        if not req.times:
            continue
        lo, hi = req.window
        t_lo = lo if t_lo is None else min(t_lo, lo)
        t_hi = hi if t_hi is None else max(t_hi, hi)
    if t_lo is None or t_hi is None:
        raise ValueError("batch contains no query times")
    return int(t_lo), int(t_hi)


class Query:
    """A certain spatio-temporal reference for PNN queries.

    Construct via :meth:`from_state`, :meth:`from_point` or
    :meth:`from_trajectory`.
    """

    def __init__(self, kind: str, coords_at) -> None:
        self._kind = kind
        self._coords_at = coords_at

    # ------------------------------------------------------------------
    @classmethod
    def from_state(cls, space: StateSpace, state: int) -> "Query":
        """A static query at a state of the space (e.g. the bank's location)."""
        if not 0 <= state < space.n_states:
            raise ValueError(f"state {state} outside state space")
        point = space.coords[state].copy()

        def coords_at(times: np.ndarray) -> np.ndarray:
            return np.tile(point, (len(times), 1))

        return cls("state", coords_at)

    @classmethod
    def from_point(cls, coords) -> "Query":
        """A static query at an arbitrary location of ``R^d``."""
        point = np.asarray(coords, dtype=float)
        if point.ndim != 1:
            raise ValueError("query point must be a 1-d coordinate array")

        def coords_at(times: np.ndarray) -> np.ndarray:
            return np.tile(point, (len(times), 1))

        return cls("point", coords_at)

    @classmethod
    def from_trajectory(cls, trajectory: Trajectory, space: StateSpace) -> "Query":
        """A moving query following a certain trajectory (e.g. the robbers' car)."""

        def coords_at(times: np.ndarray) -> np.ndarray:
            times = np.asarray(times, dtype=np.intp)
            return space.coords_of(trajectory.states_at(times))

        return cls("trajectory", coords_at)

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._kind

    def coords_at(self, times: np.ndarray) -> np.ndarray:
        """Query locations, one row per requested time."""
        out = self._coords_at(np.asarray(times, dtype=np.intp))
        return np.asarray(out, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query(kind={self._kind!r})"


@dataclass(frozen=True)
class QueryRequest:
    """One element of a ``QueryEngine.batch_query`` call.

    ``mode`` selects the semantics: ``"forall"`` (P∀kNNQ), ``"exists"``
    (P∃kNNQ) or ``"pcnn"`` (PCkNNQ — where ``tau`` is required to be
    meaningful, exactly as in :meth:`QueryEngine.continuous_nn`).
    """

    query: Query
    times: tuple[int, ...]
    mode: str = "forall"
    tau: float = 0.0
    k: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("forall", "exists", "pcnn"):
            raise ValueError(f"unknown query mode {self.mode!r}")
        if not 0.0 <= self.tau <= 1.0:
            raise ValueError("tau must be in [0, 1]")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        object.__setattr__(self, "times", tuple(int(t) for t in self.times))

    @property
    def window(self) -> tuple[int, int]:
        """``[t_lo, t_hi]`` hull of this request's time set."""
        if not self.times:
            raise ValueError("request has no query times")
        return min(self.times), max(self.times)
