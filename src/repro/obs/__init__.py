"""repro.obs — zero-dependency telemetry: tracing spans, metrics, exposition.

The subsystem has four pieces, all stdlib-only:

* :mod:`repro.obs.tracing` — :class:`Tracer` builds a span tree per
  top-level operation (a monitor tick, an ``evaluate()`` call) with
  monotonic-clock durations and parent links, keeps a bounded ring
  buffer of finished traces, and exports/adopts picklable
  :class:`TraceContext` objects so serve workers can open child spans in
  another process and ship them back to be stitched under the tick's
  root.  :class:`NullTracer` (the default everywhere) times spans with
  the same clock but retains nothing — the span *durations* are still
  real because ``EvaluationReport.stage_seconds`` and
  ``TickReport.stage_seconds`` are derived from them; there is exactly
  one timing truth whether tracing is on or off.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with typed
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments,
  cumulative snapshots, and delta merging (the same absorption pattern
  the serve tier already uses for loose counters) so worker registries
  fold into the coordinator's every tick and across ``restart_shard``.

* :mod:`repro.obs.exposition` — ``registry.to_prometheus_text()`` /
  ``to_json()`` plus :class:`MetricsServer`, a stdlib ``http.server``
  scrape endpoint (``/metrics``, ``/metrics.json``, ``/traces``,
  ``/slow``) started via ``ServeCoordinator(metrics_port=...)``.

* :mod:`repro.obs.slowlog` — :class:`SlowQueryLog`, a top-N log of
  evaluations over a latency threshold with the request's ``explain()``
  plan attached.

Telemetry never touches RNG state or result bytes: every feed is a
read-only observation guarded by ``is not None`` checks, and the
lockstep suite (``tests/obs/``) proves results, reuse counters, and the
golden file byte-identical with :class:`NullTracer` vs. a full
:class:`Tracer` + registry.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .slowlog import SlowQueryLog
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    format_span_tree,
)
from .exposition import MetricsServer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "NullTracer",
    "SlowQueryLog",
    "Span",
    "TraceContext",
    "Tracer",
    "format_span_tree",
]
