"""Structured tracing: span trees with cross-process propagation.

Design constraints (see the package docstring):

* **One timing truth.**  ``EvaluationReport.stage_seconds`` and
  ``TickReport.stage_seconds`` are derived from span durations, so even
  the disabled-by-default :class:`NullTracer` must time its spans.  A
  null span is a two-float object (start/end on ``perf_counter``) with
  no name, attrs, children, or retention — the same cost as the bare
  ``perf_counter()`` pairs it replaced.

* **Determinism.**  Trace and span ids are sequential counters under a
  caller-chosen prefix, never wall clock or random — telemetry must not
  touch RNG state, and replaying the same workload yields the same ids.

* **Cross-process stitching.**  :meth:`Tracer.context` exports a
  picklable :class:`TraceContext` naming the current span; a worker
  tracer opens spans under that remote parent via
  :meth:`Tracer.remote_span`, serialises the finished subtree with
  :meth:`Span.to_dict`, and the coordinator re-attaches it beneath its
  live span with :meth:`Tracer.attach` — so one trace shows
  ingest → schedule → per-shard sweep → gather → notify end to end.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "format_span_tree",
]


@dataclass(frozen=True)
class TraceContext:
    """Picklable pointer to a live span in another process.

    Carried by serve protocol commands (``ApplyEvents``,
    ``ComputeColumns``, ...) so workers can parent their spans under the
    coordinator's tick.  ``None`` stands for "tracing disabled".
    """

    trace_id: str
    span_id: str


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "children",
        "events",
        "t_start",
        "t_end",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str = "",
        span_id: str = "",
        parent_id: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs or {}
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.children: list[Span] = []
        self.events: list[tuple[float, str, dict[str, Any]]] = []
        self.t_start = perf_counter()
        self.t_end: float | None = None

    @property
    def duration_seconds(self) -> float:
        end = self.t_end if self.t_end is not None else perf_counter()
        return end - self.t_start

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span opened (e.g. result sizes)."""
        self.attrs.update(attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event at an offset within this span."""
        self.events.append((perf_counter() - self.t_start, name, attrs))

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> list["Span"]:
        """All spans named ``name`` in this subtree, depth-first order."""
        return [s for s in self.iter_spans() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form for pickling across the serve wire."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_seconds": self.duration_seconds,
            "events": [
                {"offset_seconds": off, "name": name, "attrs": dict(attrs)}
                for off, name, attrs in self.events
            ],
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls(
            str(data.get("name", "")),
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            parent_id=data.get("parent_id"),
            attrs=dict(data.get("attrs", {})),
        )
        # Rebuild the recorded timing rather than the wall clock at
        # deserialisation time: duration is the only portable quantity
        # (perf_counter origins differ between processes).
        span.t_start = 0.0
        span.t_end = float(data.get("duration_seconds", 0.0))
        span.events = [
            (
                float(ev.get("offset_seconds", 0.0)),
                str(ev.get("name", "")),
                dict(ev.get("attrs", {})),
            )
            for ev in data.get("events", [])
        ]
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id!r}, "
            f"dur={self.duration_seconds:.6f}s, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """Timing-only span: real duration, nothing else retained.

    ``set``/``event`` are no-ops; entering/exiting just stamps the
    monotonic clock.  This is what keeps the default hot path
    allocation-light while ``stage_seconds`` stays span-derived.
    """

    __slots__ = ("t_start", "t_end")

    def __init__(self) -> None:
        self.t_start = perf_counter()
        self.t_end: float | None = None

    @property
    def duration_seconds(self) -> float:
        end = self.t_end if self.t_end is not None else perf_counter()
        return end - self.t_start

    def set(self, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        self.t_start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.t_end = perf_counter()


class NullTracer:
    """Disabled tracer: spans time themselves but nothing is recorded.

    The default on every engine/monitor/coordinator.  ``enabled`` is the
    flag call sites check before computing expensive span attributes.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NullSpan()

    def remote_span(
        self, name: str, ctx: TraceContext | None, **attrs: Any
    ) -> _NullSpan:
        return _NullSpan()

    def context(self) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def attach(self, span_dicts: Any) -> None:
        pass

    @property
    def current(self) -> None:
        return None

    @property
    def last_trace(self) -> None:
        return None


#: Shared default instance — stateless, so one object serves every layer.
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: span stack, parent links, bounded trace buffer.

    Not thread-safe by design — each tracer belongs to one engine /
    worker / coordinator loop, mirroring how the serve tier already
    confines mutable state.  Worker replies are attached on the
    coordinator's thread after the fan-out joins.
    """

    enabled = True

    def __init__(self, *, max_traces: int = 64, id_prefix: str = "t") -> None:
        self.max_traces = int(max_traces)
        self.id_prefix = str(id_prefix)
        self.traces: deque[Span] = deque(maxlen=self.max_traces)
        self._stack: list[Span] = []
        self._trace_seq = 0
        self._span_seq = 0

    # -- span lifecycle -------------------------------------------------

    def _open(
        self,
        name: str,
        attrs: dict[str, Any],
        remote_parent: TraceContext | None = None,
    ) -> Span:
        if self._stack:
            parent = self._stack[-1]
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif remote_parent is not None:
            trace_id = remote_parent.trace_id
            parent_id = remote_parent.span_id
        else:
            self._trace_seq += 1
            trace_id = f"{self.id_prefix}-{self._trace_seq}"
            parent_id = None
        self._span_seq += 1
        span = Span(
            name,
            trace_id=trace_id,
            span_id=f"{self.id_prefix}:{self._span_seq}",
            parent_id=parent_id,
            attrs=attrs,
        )
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        span.t_start = perf_counter()  # exclude bookkeeping from duration
        return span

    def _close(self, span: Span) -> None:
        span.t_end = perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - unbalanced exit
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        if not self._stack and span.parent_id is None:
            self.traces.append(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child of the current span (or a new trace root)."""
        span = self._open(name, attrs)
        try:
            yield span
        finally:
            self._close(span)

    @contextmanager
    def remote_span(
        self, name: str, ctx: TraceContext | None, **attrs: Any
    ) -> Iterator[Span]:
        """Open a span parented under a context from another process.

        The finished subtree is *not* appended to :attr:`traces` (its
        root lives elsewhere); callers serialise it with
        :meth:`Span.to_dict` and ship it home in the ``Reply``.
        """
        span = self._open(name, attrs, remote_parent=ctx)
        try:
            yield span
        finally:
            span.t_end = perf_counter()
            if self._stack and self._stack[-1] is span:
                self._stack.pop()

    # -- introspection / propagation ------------------------------------

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def last_trace(self) -> Span | None:
        return self.traces[-1] if self.traces else None

    def context(self) -> TraceContext | None:
        """Picklable handle to the current span for cross-process parents."""
        cur = self.current
        if cur is None:
            return None
        return TraceContext(trace_id=cur.trace_id, span_id=cur.span_id)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an event on the current span (no-op outside any span)."""
        cur = self.current
        if cur is not None:
            cur.event(name, **attrs)

    def attach(self, span_dicts: Any) -> None:
        """Stitch serialised remote spans under the current span.

        ``span_dicts`` is a list of :meth:`Span.to_dict` payloads from a
        worker reply.  With no live span (e.g. absorption outside a
        trace) the subtrees are dropped — there is nothing to parent
        them under.
        """
        cur = self.current
        if cur is None or not span_dicts:
            return
        for data in span_dicts:
            span = Span.from_dict(data)
            span.parent_id = cur.span_id
            cur.children.append(span)


def format_span_tree(span: Span, *, indent: int = 0) -> str:
    """Human-readable one-line-per-span rendering of a trace."""
    pad = "  " * indent
    attrs = ""
    if span.attrs:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(span.attrs.items()))
        attrs = f"  [{inner}]"
    lines = [f"{pad}{span.name}  {span.duration_seconds * 1e3:.3f} ms{attrs}"]
    for off, name, ev_attrs in span.events:
        detail = ""
        if ev_attrs:
            inner = ", ".join(
                f"{k}={v!r}" for k, v in sorted(ev_attrs.items())
            )
            detail = f"  [{inner}]"
        lines.append(f"{pad}  @{off * 1e3:.3f} ms  {name}{detail}")
    for child in span.children:
        lines.append(format_span_tree(child, indent=indent + 1))
    return "\n".join(lines)
