"""Top-N slow-query log with attached explain plans and traces."""

from __future__ import annotations

import heapq
import itertools
from typing import Any

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Keep the ``capacity`` slowest operations over a latency threshold.

    Fed by ``QueryEngine.evaluate`` (and anything else that wants in):
    each entry carries the operation name, its duration, the request's
    resolved plan/report detail (the ``explain()`` view), and — when
    tracing is enabled — the serialised span tree, so a slow request can
    be read stage by stage after the fact.

    Implementation: a min-heap of size ``capacity`` keyed on duration,
    so recording is O(log N) and the fastest entry is evicted first.
    """

    def __init__(
        self, *, threshold_seconds: float = 0.1, capacity: int = 32
    ) -> None:
        self.threshold_seconds = float(threshold_seconds)
        self.capacity = int(capacity)
        self._heap: list[tuple[float, int, dict[str, Any]]] = []
        self._tiebreak = itertools.count()
        self.recorded_total = 0
        self.seen_total = 0

    def record(
        self,
        name: str,
        seconds: float,
        *,
        explain: dict[str, Any] | None = None,
        trace: dict[str, Any] | None = None,
    ) -> bool:
        """Offer one operation; returns True if it entered the log."""
        self.seen_total += 1
        seconds = float(seconds)
        if seconds < self.threshold_seconds:
            return False
        entry = {
            "name": str(name),
            "seconds": seconds,
            "explain": explain,
            "trace": trace,
        }
        item = (seconds, next(self._tiebreak), entry)
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, item)
            self.recorded_total += 1
            return True
        if seconds > self._heap[0][0]:
            heapq.heapreplace(self._heap, item)
            self.recorded_total += 1
            return True
        return False

    def entries(self) -> list[dict[str, Any]]:
        """Logged entries, slowest first."""
        return [
            entry
            for _, _, entry in sorted(
                self._heap, key=lambda item: (-item[0], item[1])
            )
        ]

    def to_json(self) -> dict[str, Any]:
        return {
            "threshold_seconds": self.threshold_seconds,
            "capacity": self.capacity,
            "seen_total": self.seen_total,
            "recorded_total": self.recorded_total,
            "entries": self.entries(),
        }

    def clear(self) -> None:
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)
