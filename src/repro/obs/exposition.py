"""Stdlib HTTP scrape endpoint for metrics, traces, and the slow log.

:class:`MetricsServer` wraps ``http.server.ThreadingHTTPServer`` on a
daemon thread.  Routes:

* ``/metrics`` — Prometheus text exposition (``text/plain``)
* ``/metrics.json`` — the registry's JSON snapshot
* ``/traces`` — recent finished traces from the bound tracer (if any)
* ``/slow`` — the slow-query log (if any)

``port=0`` binds an ephemeral port; read the real one from
:attr:`MetricsServer.port` / :attr:`MetricsServer.url`.  The server
only ever *reads* telemetry state, so scraping cannot perturb results.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .metrics import MetricsRegistry
from .slowlog import SlowQueryLog
from .tracing import Tracer

__all__ = ["MetricsServer"]


class MetricsServer:
    """Serve a registry (plus optional tracer/slow log) over HTTP."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        tracer: Tracer | None = None,
        slow_log: SlowQueryLog | None = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.slow_log = slow_log
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = server.registry.to_prometheus_text().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/metrics.json":
                    body = _json_bytes(server.registry.to_json())
                    ctype = "application/json"
                elif path == "/traces":
                    body = _json_bytes(server._traces_payload())
                    ctype = "application/json"
                elif path == "/slow":
                    body = _json_bytes(server._slow_payload())
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes should not spam stderr

        self._httpd = ThreadingHTTPServer((host, int(port)), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _traces_payload(self) -> dict[str, Any]:
        if self.tracer is None:
            return {"traces": []}
        return {"traces": [span.to_dict() for span in self.tracer.traces]}

    def _slow_payload(self) -> dict[str, Any]:
        if self.slow_log is None:
            return {"entries": []}
        return self.slow_log.to_json()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, indent=2, sort_keys=True, default=str).encode()
