"""Typed metrics: counters, gauges, fixed-bucket histograms, a registry.

The registry is deliberately small and stdlib-only.  Two properties
matter to the rest of the system:

* **Snapshot/merge is the serve absorption pattern.**  Workers return
  *cumulative* :meth:`MetricsRegistry.snapshot` payloads in every reply;
  the coordinator keeps a per-shard last-seen snapshot and folds only
  the delta into its own registry (:meth:`MetricsRegistry.merge_delta`)
  — exactly how ``ShardedQueryEngine._absorb`` already reconciles the
  loose reuse counters.  Cumulative-over-the-wire means a dropped reply
  loses nothing and ``restart_shard`` just resets the last-seen
  snapshot; totals absorbed before the crash survive the replay.

* **Feeds are optional.**  Every instrumented call site guards with
  ``if metrics is not None`` (or caches instrument handles once), so the
  default un-instrumented path costs nothing and never perturbs RNG
  state or result bytes.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
]

#: Default histogram buckets for latency-in-seconds instruments — wide
#: enough for a sub-millisecond prune and a multi-second cold tick.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

LabelsKey = tuple[tuple[str, str], ...]


def _labels_key(labels: dict[str, str] | None) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelsKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def state(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """Point-in-time value (may go up or down)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def state(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the rest.  ``counts[i]`` is the number of observations
    ``<= buckets[i]`` *for that bucket alone* internally; exposition
    renders the cumulative form.
    """

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def state(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named, labelled instruments with snapshot/delta-merge support."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelsKey], Metric] = {}
        self._help: dict[str, str] = {}

    # -- instrument accessors (create-on-first-use) ---------------------

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._get(name, help, labels, Counter)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        return self._get(name, help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: Iterable[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        key = (str(name), _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if help:
                self._help.setdefault(key[0], help)
            metric = Histogram(buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _get(self, name, help, labels, cls):
        key = (str(name), _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if help:
                self._help.setdefault(key[0], help)
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    # -- introspection --------------------------------------------------

    def value(self, name: str, labels: dict[str, str] | None = None) -> float:
        """Current scalar value (counter/gauge) or count (histogram)."""
        metric = self._metrics.get((str(name), _labels_key(labels)))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return float(metric.count)
        return float(metric.value)

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._metrics})

    # -- snapshot / merge (cross-process absorption) --------------------

    def snapshot(self) -> dict[str, Any]:
        """Cumulative picklable state of every instrument.

        Keys are ``name`` + rendered label set (stable across calls), so
        two snapshots of the same registry subtract cleanly.
        """
        out: dict[str, Any] = {}
        for (name, labels), metric in self._metrics.items():
            out[name + _format_labels(labels)] = {
                "name": name,
                "labels": list(labels),
                **metric.state(),
            }
        return out

    def merge_delta(
        self, snapshot: dict[str, Any], seen: dict[str, Any]
    ) -> None:
        """Fold a remote cumulative ``snapshot`` into this registry.

        ``seen`` is the caller-held last absorbed snapshot for the same
        source (e.g. per shard); only the difference since ``seen`` is
        added, then ``seen`` is updated in place.  Counters and
        histograms add deltas; gauges take the remote value as-is
        (last-writer-wins, which is what per-shard labelled gauges
        want).
        """
        for key, state in snapshot.items():
            prev = seen.get(key)
            name = state["name"]
            labels = dict(state.get("labels", []))
            kind = state.get("type")
            if kind == "counter":
                delta = state["value"] - (prev["value"] if prev else 0.0)
                if delta:
                    self.counter(name, labels=labels or None).inc(delta)
            elif kind == "gauge":
                self.gauge(name, labels=labels or None).set(state["value"])
            elif kind == "histogram":
                hist = self.histogram(
                    name, labels=labels or None, buckets=state["buckets"]
                )
                prev_counts = prev["counts"] if prev else [0] * len(
                    state["counts"]
                )
                for i, (new, old) in enumerate(
                    zip(state["counts"], prev_counts)
                ):
                    hist.counts[i] += new - old
                hist.sum += state["sum"] - (prev["sum"] if prev else 0.0)
                hist.count += state["count"] - (prev["count"] if prev else 0)
            seen[key] = state

    # -- exposition -----------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        by_name: dict[str, list[tuple[LabelsKey, Metric]]] = {}
        for (name, labels), metric in self._metrics.items():
            by_name.setdefault(name, []).append((labels, metric))
        lines: list[str] = []
        for name in sorted(by_name):
            series = sorted(by_name[name], key=lambda item: item[0])
            kind = series[0][1].kind
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, metric in series:
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(metric.buckets, metric.counts):
                        cumulative += count
                        key = _format_labels(
                            labels + (("le", format(bound, "g")),)
                        )
                        lines.append(f"{name}_bucket{key} {cumulative}")
                    cumulative += metric.counts[-1]
                    inf_key = _format_labels(labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{inf_key} {cumulative}")
                    label_str = _format_labels(labels)
                    lines.append(f"{name}_sum{label_str} {metric.sum}")
                    lines.append(f"{name}_count{label_str} {metric.count}")
                else:
                    label_str = _format_labels(labels)
                    value = metric.value
                    rendered = (
                        repr(int(value))
                        if float(value).is_integer()
                        else repr(value)
                    )
                    lines.append(f"{name}{label_str} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict[str, Any]:
        """JSON-friendly mirror of :meth:`snapshot`."""
        return self.snapshot()
