"""The Lemma 1 hardness reduction (3-SAT -> P-exists-NN), executable."""

from .ksat import CNF, random_ksat
from .reduction import ReductionInstance, build_reduction, satisfiable_via_pnn

__all__ = [
    "CNF",
    "ReductionInstance",
    "build_reduction",
    "random_ksat",
    "satisfiable_via_pnn",
]
