"""k-SAT instances: the source problem of the Lemma 1 reduction.

Clauses use DIMACS-style signed literals: ``+i`` means variable ``x_i``,
``-i`` means ``¬x_i`` (variables are numbered from 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

__all__ = ["CNF", "random_ksat"]


@dataclass(frozen=True)
class CNF:
    """A boolean formula in conjunctive normal form."""

    n_vars: int
    clauses: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.n_vars < 1:
            raise ValueError("need at least one variable")
        for clause in self.clauses:
            if not clause:
                raise ValueError("empty clause (formula trivially unsatisfiable)")
            for lit in clause:
                if lit == 0 or abs(lit) > self.n_vars:
                    raise ValueError(f"literal {lit} out of range")
            if len({abs(lit) for lit in clause}) != len(clause):
                raise ValueError(f"clause {clause} mentions a variable twice")

    @staticmethod
    def parse(n_vars: int, clauses) -> "CNF":
        return CNF(n_vars, tuple(tuple(int(l) for l in c) for c in clauses))

    # ------------------------------------------------------------------
    def evaluate(self, assignment: tuple[bool, ...]) -> bool:
        """Truth value under an assignment (index 0 = x_1)."""
        if len(assignment) != self.n_vars:
            raise ValueError("assignment length mismatch")
        for clause in self.clauses:
            if not any(
                assignment[abs(lit) - 1] == (lit > 0) for lit in clause
            ):
                return False
        return True

    def satisfying_assignments(self) -> list[tuple[bool, ...]]:
        """All satisfying assignments by brute force (test-scale only)."""
        return [
            assignment
            for assignment in product((False, True), repeat=self.n_vars)
            if self.evaluate(assignment)
        ]

    def is_satisfiable(self) -> bool:
        return any(
            self.evaluate(assignment)
            for assignment in product((False, True), repeat=self.n_vars)
        )

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)


def random_ksat(
    n_vars: int, n_clauses: int, k: int, rng: np.random.Generator
) -> CNF:
    """A uniformly random k-SAT formula (distinct variables per clause)."""
    if k > n_vars:
        raise ValueError("clause width k cannot exceed the variable count")
    clauses = []
    for _ in range(n_clauses):
        variables = rng.choice(np.arange(1, n_vars + 1), size=k, replace=False)
        signs = rng.choice([-1, 1], size=k)
        clauses.append(tuple(int(v * s) for v, s in zip(variables, signs)))
    return CNF(n_vars, tuple(clauses))
