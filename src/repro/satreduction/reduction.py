"""The Lemma 1 reduction: k-SAT → P∃NN hardness, made executable.

Section 4.1 maps a CNF formula to a database of uncertain objects such
that deciding ``P∃NN(o, q, D, T) < 1`` decides satisfiability:

* 4 payload states: ``s1, s2`` closer to the query than the target object
  ``o``; ``s3, s4`` farther (Fig. 2);
* each variable ``x_i`` becomes an uncertain object ``o'_i`` with exactly
  two possible trajectories — one per truth value — drawn with probability
  0.5 each via an initial branching transition;
* at clause time ``j``, the trajectory for assignment ``b`` visits a
  *closer* state iff ``x_i = b`` makes clause ``c_j`` true (variables
  absent from ``c_j`` are padded with the unsatisfiable ``x_i ∧ ¬x_i``,
  i.e. both trajectories stay farther).

A world then fails to contain a time where ``o`` is nearest exactly when
the corresponding assignment satisfies every clause, hence
``P∃NN(o) = 1 - (#satisfying assignments) / 2^n``.

One framework-specific twist: our objects' spans are delimited by
observations, and the two branch trajectories end in *different* states, so
a real final observation would collapse the branching.  The chains
therefore route both branches back into the far-away start state at time
``m + 1`` (after all clause times), where a final observation pins the span
without conditioning either branch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..core.exact import exact_nn_probabilities
from ..core.queries import Query
from ..markov.chain import InhomogeneousMarkovChain, MarkovChain
from ..statespace.base import StateSpace
from ..trajectory.database import TrajectoryDatabase
from .ksat import CNF

__all__ = ["ReductionInstance", "build_reduction", "satisfiable_via_pnn", "TARGET_ID"]

# State layout (coords on a line, query at the origin):
# 0: s_start — pre/post-branch holding state (far from q)
# 1: s1 (closer, "false" branch)   2: s2 (closer, "true" branch)
# 3: s3 (farther, "false" branch)  4: s4 (farther, "true" branch)
# 5: s_o — the target object's fixed position
_START, _S1, _S2, _S3, _S4, _SO = range(6)
_COORDS = np.asarray(
    [[8.0, 0.0], [0.5, 0.0], [1.0, 0.0], [3.0, 0.0], [4.0, 0.0], [2.0, 0.0]]
)
TARGET_ID = "o"


@dataclass
class ReductionInstance:
    """The constructed database plus everything needed to query it."""

    cnf: CNF
    db: TrajectoryDatabase
    query: Query
    times: tuple[int, ...]

    def exact_p_exists_nn(self) -> float:
        """``P∃NN(o, q, D, T)`` by exact world enumeration."""
        probs = exact_nn_probabilities(self.db, self.query, self.times)
        return probs[TARGET_ID][1]


def _branch_state(cnf: CNF, var: int, clause_idx: int, value: bool) -> int:
    """State of ``o'_var`` at clause time ``clause_idx + 1`` for ``x=value``.

    True-branch trajectories move on {s2, s4}, false-branch on {s1, s3};
    the two never collide, so one Markov chain hosts both (paper, proof of
    Lemma 1).
    """
    clause = cnf.clauses[clause_idx]
    literal = next((lit for lit in clause if abs(lit) == var), None)
    if literal is None:
        satisfied = False  # padding with x ∧ ¬x: never closer
    else:
        satisfied = (literal > 0) == value
    if value:
        return _S2 if satisfied else _S4
    return _S1 if satisfied else _S3


def _variable_chain(cnf: CNF, var: int) -> InhomogeneousMarkovChain:
    """The inhomogeneous chain hosting both truth-value trajectories."""
    n = len(_COORDS)
    m = cnf.n_clauses
    eye = sparse.identity(n, format="lil")
    matrices: dict[int, sparse.csr_matrix] = {}

    # t=0 -> t=1: branch from the start state into the two assignments.
    branch = eye.copy()
    branch[_START, _START] = 0.0
    branch[_START, _branch_state(cnf, var, 0, True)] = 0.5
    branch[_START, _branch_state(cnf, var, 0, False)] = 0.5
    matrices[0] = sparse.csr_matrix(branch)

    # Clause j -> clause j+1: deterministic moves on each branch.
    for j in range(m - 1):
        step = eye.copy()
        for value in (True, False):
            src = _branch_state(cnf, var, j, value)
            dst = _branch_state(cnf, var, j + 1, value)
            step[src, src] = 0.0
            step[src, dst] = 1.0
        matrices[j + 1] = sparse.csr_matrix(step)

    # Time m -> m+1: both branches merge back into the start state so a
    # final observation can pin the span without conditioning the branches.
    final = eye.copy()
    for value in (True, False):
        src = _branch_state(cnf, var, m - 1, value)
        final[src, src] = 0.0
        final[src, _START] = 1.0
    matrices[m] = sparse.csr_matrix(final)

    return InhomogeneousMarkovChain(
        matrices, default=sparse.identity(n, format="csr")
    )


def build_reduction(cnf: CNF) -> ReductionInstance:
    """Construct the Section 4.1 database for a CNF formula."""
    space = StateSpace(_COORDS)
    identity = MarkovChain(sparse.identity(len(_COORDS), format="csr"))
    db = TrajectoryDatabase(space, identity)
    m = cnf.n_clauses

    # The target object o: certain, pinned at s_o for the whole horizon.
    db.add_object(TARGET_ID, [(0, _SO), (m + 1, _SO)], chain=identity)

    for var in range(1, cnf.n_vars + 1):
        db.add_object(
            f"x{var}",
            [(0, _START), (m + 1, _START)],
            chain=_variable_chain(cnf, var),
        )

    query = Query.from_point([0.0, 0.0])
    return ReductionInstance(
        cnf=cnf, db=db, query=query, times=tuple(range(1, m + 1))
    )


def satisfiable_via_pnn(cnf: CNF) -> bool:
    """Decide satisfiability through the PNN lens: ``P∃NN(o) < 1``.

    Exactly Lemma 1's argument — a satisfying assignment corresponds to a
    possible world where some variable object is strictly closer than
    ``o`` at every clause time.
    """
    instance = build_reduction(cnf)
    return instance.exact_p_exists_nn() < 1.0 - 1e-12
