"""Transports: how protocol commands reach shard workers.

Two implementations behind one duck-typed interface (``request``,
``broadcast``, ``restart``, ``close``, ``uses_shm``):

* :class:`InlineTransport` holds :class:`ShardWorkerState` objects
  in-process and calls their handlers directly.  Deterministic, fast and
  debuggable — the cross-shard lockstep suite runs the full shard-count ×
  backend × fused matrix through it, exercising every protocol path
  except OS-level transport (pipes, shared memory, process death).
* :class:`ProcessTransport` spawns one worker process per shard
  (``spawn`` start method — fork is unsafe under threads/BLAS), speaks
  pickled commands over pipes, fans broadcasts out concurrently through a
  persistent asyncio loop, and lets workers write sampled columns into
  coordinator-allocated shared memory (``uses_shm``) so world tensors are
  gathered without pickling.

Both translate worker death into :class:`ShardCrashed` — a timeout, a
broken pipe or an explicit :class:`CrashWorker` — which the sharded
engine wraps into the user-facing :class:`ShardFailure`.  Handler
*errors* (the worker survives) surface as ``RuntimeError`` with the
worker traceback instead: a bug is not a crash.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from .protocol import (
    CrashWorker,
    ErrorReply,
    ShardCrashed,
    Shutdown,
    WorkerConfig,
)
from .worker import ShardWorkerState, worker_main

__all__ = ["InlineTransport", "ProcessTransport"]


class InlineTransport:
    """Direct in-process dispatch to :class:`ShardWorkerState` objects."""

    uses_shm = False

    def __init__(self, configs: dict[int, WorkerConfig]) -> None:
        self._workers = {
            shard: ShardWorkerState(config) for shard, config in configs.items()
        }
        self._dead: set[int] = set()
        #: Cumulative per-shard request round-trip time (observability:
        #: round trip minus the reply's ``busy_seconds`` is the transport
        #: overhead — zero-ish inline, pickling + pipes in process mode).
        self.roundtrip_seconds: dict[int, float] = {s: 0.0 for s in configs}

    def worker(self, shard: int) -> ShardWorkerState:
        """The live worker state (test introspection hook)."""
        return self._workers[shard]

    def request(self, shard: int, command):
        if shard in self._dead:
            raise ShardCrashed(shard, "worker process is dead")
        if isinstance(command, CrashWorker):
            self._dead.add(shard)
            raise ShardCrashed(shard, "worker crashed (CrashWorker hook)")
        t0 = perf_counter()
        reply = self._workers[shard].handle(command)
        self.roundtrip_seconds[shard] = (
            self.roundtrip_seconds.get(shard, 0.0) + perf_counter() - t0
        )
        return reply

    def broadcast(self, commands: dict[int, object]) -> dict[int, object]:
        replies = {}
        crashed: ShardCrashed | None = None
        for shard in sorted(commands):
            try:
                replies[shard] = self.request(shard, commands[shard])
            except ShardCrashed as exc:
                crashed = crashed or exc
        if crashed is not None:
            raise crashed
        return replies

    def restart(self, shard: int, config: WorkerConfig) -> None:
        self._workers[shard] = ShardWorkerState(config)
        self._dead.discard(shard)

    def close(self) -> None:
        self._workers.clear()
        self._dead.clear()


class ProcessTransport:
    """One spawned worker process per shard, pipes + shared memory."""

    uses_shm = True

    def __init__(
        self, configs: dict[int, WorkerConfig], timeout: float = 120.0
    ) -> None:
        self._ctx = multiprocessing.get_context("spawn")
        self._timeout = float(timeout)
        self._procs: dict[int, multiprocessing.Process] = {}
        self._conns: dict[int, object] = {}
        #: Cumulative per-shard request round-trip time (see
        #: :class:`InlineTransport`); each shard is only ever touched by
        #: the one fan-out thread carrying its request, so plain float
        #: accumulation is safe.
        self.roundtrip_seconds: dict[int, float] = {s: 0.0 for s in configs}
        for shard, config in sorted(configs.items()):
            self._start(shard, config)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, len(configs)), thread_name_prefix="serve-io"
        )
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="serve-loop", daemon=True
        )
        self._loop_thread.start()

    def _start(self, shard: int, config: WorkerConfig) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child, config),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        proc.start()
        child.close()
        self._procs[shard] = proc
        self._conns[shard] = parent

    def request(self, shard: int, command):
        conn = self._conns[shard]
        proc = self._procs[shard]
        t0 = perf_counter()
        try:
            conn.send(command)
            if isinstance(command, CrashWorker):
                proc.join(self._timeout)
                raise ShardCrashed(shard, "worker crashed (CrashWorker hook)")
            if not conn.poll(self._timeout):
                alive = proc.is_alive()
                raise ShardCrashed(
                    shard,
                    f"no reply within {self._timeout:.0f}s "
                    f"(process {'alive but stuck' if alive else 'dead'})",
                )
            reply = conn.recv()
        except ShardCrashed:
            raise
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise ShardCrashed(
                shard, f"{type(exc).__name__}: {exc or 'connection lost'}"
            ) from exc
        if isinstance(reply, ErrorReply):
            raise RuntimeError(
                f"shard {shard} handler failed (worker survives):\n{reply.error}"
            )
        self.roundtrip_seconds[shard] = (
            self.roundtrip_seconds.get(shard, 0.0) + perf_counter() - t0
        )
        return reply

    def broadcast(self, commands: dict[int, object]) -> dict[int, object]:
        if len(commands) <= 1:
            return {
                shard: self.request(shard, command)
                for shard, command in commands.items()
            }

        async def _gather():
            loop = asyncio.get_running_loop()
            futures = {
                shard: loop.run_in_executor(
                    self._pool, self.request, shard, command
                )
                for shard, command in sorted(commands.items())
            }
            replies: dict[int, object] = {}
            errors: list[BaseException] = []
            # Await every shard even after a failure: survivors finish
            # their in-flight work (and their pipes stay message-aligned)
            # before the failure propagates.
            for shard, future in futures.items():
                try:
                    replies[shard] = await future
                except BaseException as exc:
                    errors.append(exc)
            if errors:
                for exc in errors:
                    if isinstance(exc, ShardCrashed):
                        raise exc
                raise errors[0]
            return replies

        return asyncio.run_coroutine_threadsafe(_gather(), self._loop).result()

    def restart(self, shard: int, config: WorkerConfig) -> None:
        proc = self._procs.get(shard)
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(5.0)
        conn = self._conns.pop(shard, None)
        if conn is not None:
            conn.close()
        self._start(shard, config)

    def close(self) -> None:
        for shard, conn in list(self._conns.items()):
            try:
                conn.send(Shutdown())
            except (BrokenPipeError, OSError):
                pass
        for shard, proc in list(self._procs.items()):
            proc.join(5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(1.0)
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        self._conns.clear()
        self._procs.clear()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(5.0)
        self._pool.shutdown(wait=False)
