"""Object-id sharding: the ownership function and the event router.

Everything in the serving layer hangs off one deterministic mapping,
:func:`shard_of`: an object id's owning shard is the first four bytes of
its SHA-256 digest (little-endian) modulo the shard count.  Three
properties make this the right key:

* **Process independence** — unlike Python's builtin ``hash``, the digest
  is not salted per process, so the coordinator, every worker and a
  restarted replacement worker all agree on ownership without any
  coordination.
* **Determinism ties into world reproducibility** — the engine's
  per-object RNGs are seeded from ``(engine entropy, draw epoch, id
  digest)`` and never from global draw order, so the worlds an object's
  owner samples are bit-identical to the worlds a single-process engine
  would have sampled for it.  Ownership therefore only *partitions* the
  sampling work; it cannot change its outcome.
* **Content hashing balances without state** — no directory service to
  replicate or fail over; any component can route any id at any time.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

__all__ = ["shard_of", "ShardRouter"]


def shard_of(object_id: str, n_shards: int) -> int:
    """The shard owning ``object_id`` (stable across processes and runs)."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    digest = hashlib.sha256(str(object_id).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little") % n_shards


class ShardRouter:
    """Partitions ids, id lists and event batches by owning shard."""

    def __init__(self, n_shards: int) -> None:
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards

    def shard_of(self, object_id: str) -> int:
        return shard_of(object_id, self.n_shards)

    def partition_ids(self, object_ids: Iterable[str]) -> dict[int, list[str]]:
        """``{shard: [owned ids]}``, preserving input order within a shard."""
        parts: dict[int, list[str]] = {}
        for oid in object_ids:
            parts.setdefault(self.shard_of(oid), []).append(oid)
        return parts

    def partition_positions(
        self, object_ids: Sequence[str]
    ) -> dict[int, list[int]]:
        """``{shard: [positions into object_ids]}`` — column assignment.

        The coordinator assembles cross-shard tensors by letting each
        shard fill exactly the columns of the ids it owns; positions (not
        ids) are what index those columns.
        """
        parts: dict[int, list[int]] = {}
        for pos, oid in enumerate(object_ids):
            parts.setdefault(self.shard_of(oid), []).append(pos)
        return parts

    def partition_events(self, events: Sequence) -> dict[int, list]:
        """``{shard: [events]}``, order-preserving per shard.

        All of one object's events route to its single owner, so a batch
        that validates centrally (membership and duplicate-time checks are
        tracked per object id) is valid on every shard by construction.
        """
        parts: dict[int, list] = {}
        for event in events:
            parts.setdefault(self.shard_of(str(event.object_id)), []).append(event)
        return parts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardRouter(n_shards={self.n_shards})"
