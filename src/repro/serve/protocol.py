"""The coordinator ↔ shard-worker wire protocol.

Plain picklable dataclasses: the same command objects drive both the
in-process transport (direct calls — the lockstep test surface) and the
multi-process transport (pipes + shared memory).  Every reply carries the
worker's cumulative world-cache counters and the handler's busy time, so
the coordinator can fold per-shard reuse accounting and stage timings
into the single-process report format without extra round trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "WorkerConfig",
    "ApplyEvents",
    "SyncShard",
    "ComputeJob",
    "ComputeColumns",
    "PrefetchWorlds",
    "ReplayWorlds",
    "CrashWorker",
    "Shutdown",
    "Reply",
    "ErrorReply",
    "ShardCrashed",
    "ShardFailure",
]


@dataclass
class WorkerConfig:
    """Everything needed to (re)build one shard worker.

    ``db`` is a shard view (see
    :meth:`~repro.trajectory.database.TrajectoryDatabase.shard_view`);
    ``seed`` must equal the coordinator engine's seed — both derive the
    same root world entropy from it, which is what makes worker-sampled
    worlds bit-identical to single-process ones.  ``engine_kwargs`` are
    the coordinator's engine settings; the worker forces
    ``reuse_worlds=True`` (epochs arrive with each command) and
    ``refine_cache_size=0`` (tensor caching is coordinator-side).
    """

    shard: int
    n_shards: int
    db: Any
    seed: int
    engine_kwargs: dict = field(default_factory=dict)
    #: Build the worker with its own recording ``Tracer`` + registry
    #: (never the coordinator's objects — telemetry state is per-process
    #: and ships home serialised inside each :class:`Reply`).
    telemetry: bool = False


@dataclass
class ApplyEvents:
    """Apply this shard's sub-batch of a centrally validated event batch."""

    events: list
    #: Optional :class:`repro.obs.TraceContext` — the coordinator span to
    #: parent this command's worker-side span under (``None`` = no trace).
    trace: Any = None


@dataclass
class SyncShard:
    """Mirror the coordinator's mutation-sync decision.

    ``wholesale=True`` forces a full flush (new worlds token, fresh
    arena) even when the worker's own mutation log could name the delta —
    the coordinator's log may have overflowed when the worker's did not,
    and invalidation *timing* must match the single-process engine for
    per-tick reuse counters to stay bit-identical.
    """

    wholesale: bool
    trace: Any = None


@dataclass
class ComputeJob:
    """One tensor's columns owned by this shard.

    ``kind`` is ``"dist"`` (query distances, float64) or ``"states"``
    (sampled world states, intp).  ``query`` is the query's *evaluated*
    per-time coordinate table (``Query.from_coords`` rebuilds it worker
    side) — never a ``Query`` object, whose closures do not pickle.
    When the batch rides shared memory,
    ``shm_offset``/``full_shape``/``dtype`` locate the *full* cross-shard
    tensor inside the segment and ``col_index`` the columns this worker
    writes; otherwise the worker returns its sub-tensor in the reply.
    """

    kind: str
    query: Any
    times: Any
    object_ids: tuple
    n_samples: int
    job_index: int
    col_index: tuple = ()
    shm_offset: int = 0
    full_shape: tuple = ()
    dtype: str = ""


@dataclass
class ComputeColumns:
    """Compute a batch of jobs under the coordinator's batch context.

    ``epoch``/``window`` pin the worker's draw epoch and batch window to
    the coordinator's, so cache anchors and RNG seeds are identical to
    what a single-process batch would use.
    """

    epoch: int
    window: tuple | None
    jobs: list
    shm_name: str | None = None
    trace: Any = None


@dataclass
class PrefetchWorlds:
    """Warm owned objects' world segments ahead of a tick's evaluations."""

    epoch: int
    targets: tuple = ()
    window: tuple | None = None
    n_samples: int | None = None
    trace: Any = None


@dataclass
class ReplayWorlds:
    """Rebuild a restarted worker's world cache from recorded windows.

    ``items`` are ``(object_id, n_samples, t_lo, t_hi)`` — the exact
    per-object cache windows the coordinator mirrored for the lost shard.
    A fresh one-shot draw over the final window is bit-identical to the
    original draw plus its forward extensions (the world-cache extension
    contract), so resumption after replay is exact.
    """

    epoch: int
    items: tuple
    trace: Any = None


@dataclass
class CrashWorker:
    """Test/ops hook: make the worker die without replying."""


@dataclass
class Shutdown:
    """Orderly worker exit."""


@dataclass
class Reply:
    """A successful command's result.

    ``counters`` are the worker's *cumulative* world-cache counters
    (hits, partial hits, misses, invalidated segments); the coordinator
    absorbs deltas so its own counters read as if it had done the
    sampling itself.  ``busy_seconds`` is the handler's wall time.

    With telemetry enabled, ``spans`` carries the handler's finished
    span subtree (:meth:`repro.obs.Span.to_dict` payloads) for the
    coordinator to stitch under its live span, and ``metrics`` the
    worker registry's *cumulative* snapshot — absorbed as deltas, same
    as ``counters``, so a restart only resets the last-seen baseline.
    """

    payload: Any = None
    counters: dict = field(default_factory=dict)
    busy_seconds: float = 0.0
    spans: list = field(default_factory=list)
    metrics: dict | None = None


@dataclass
class ErrorReply:
    """A handler raised; the worker survives. ``error`` is the traceback."""

    error: str


class ShardCrashed(Exception):
    """Internal transport signal: a worker process is gone (or timed out)."""

    def __init__(self, shard: int, detail: str) -> None:
        self.shard = int(shard)
        self.detail = str(detail)
        super().__init__(f"shard {self.shard}: {self.detail}")


class ShardFailure(RuntimeError):
    """A shard worker died mid-tick.

    Raised on the coordinator in place of a hang: names the shard, the
    subscriptions whose tick was in flight, and the recovery path.  The
    database itself is never lost — the coordinator applies every batch
    to its own authoritative copy before fan-out — so
    ``ServeCoordinator.restart_shard`` can always rebuild the worker and
    replay its worlds bit-identically.
    """

    def __init__(self, shard: int, detail: str, subscriptions=()) -> None:
        self.shard = int(shard)
        self.detail = str(detail)
        self.subscriptions = tuple(subscriptions)
        inflight = ", ".join(repr(s) for s in self.subscriptions) or "none"
        super().__init__(
            f"shard worker {self.shard} failed mid-tick "
            f"(in-flight subscriptions: {inflight}): {self.detail}; "
            f"restart_shard({self.shard}) rebuilds it from the database "
            "and replays its cached worlds bit-identically"
        )
