"""Sharded concurrent serving front-end (the ``repro.serve`` layer).

Shards the trajectory database, world cache and sampling arena by
object-id hash across worker processes (or in-process worker states),
coordinated by :class:`ServeCoordinator` — a drop-in serving wrapper
around the continuous monitor whose notifications, probabilities and
reuse counters are bit-identical to single-process monitoring for any
seed and any shard count.  See the README's "Serving" section for the
determinism argument and a quickstart.
"""

from .coordinator import ServeCoordinator
from .engine import ShardedQueryEngine
from .protocol import ShardFailure, WorkerConfig
from .sharding import ShardRouter, shard_of
from .transport import InlineTransport, ProcessTransport
from .worker import ShardWorkerState

__all__ = [
    "ServeCoordinator",
    "ShardedQueryEngine",
    "ShardFailure",
    "ShardRouter",
    "ShardWorkerState",
    "InlineTransport",
    "ProcessTransport",
    "WorkerConfig",
    "shard_of",
]
