"""The coordinator-side engine: a ``QueryEngine`` whose sampling is remote.

:class:`ShardedQueryEngine` subclasses the single-process engine and
overrides exactly the layer where sampled worlds are materialized — the
distance-tensor / states-block computations and the world prefetch.  All
planning, filtering (the UST-tree runs over the *full* database, so
candidate and influence sets are globally identical to single-process
evaluation), refinement-tensor caching, thresholding and monitoring logic
above that layer is inherited unchanged, which is the whole correctness
argument: the sharded system runs literally the same code everywhere
except that each object's worlds are drawn inside its owning shard
worker.

Bit-identity of the drawn worlds rests on three invariants:

* workers are built with the **same seed** as the coordinator, so both
  derive the same root world entropy, and per-object RNGs depend only on
  ``(entropy, draw epoch, id digest)`` — never on which other objects
  share a database or an arena;
* every compute command ships the coordinator's **draw epoch and batch
  window**, and the worker evaluates inside
  :meth:`QueryEngine.held_batch`, so cache anchors
  (:meth:`QueryEngine._cache_window`) and stamps match the single-process
  batch exactly;
* invalidation **timing** is mirrored: whenever the coordinator engine
  syncs a mutation delta it broadcasts the decision (selective vs
  wholesale) to every shard, so worker caches flush in the same tick a
  single-process cache would.

Reuse accounting folds back losslessly because the world cache
partitions by object: every lookup a single-process engine would perform
happens on exactly one worker, whose cumulative hit/miss counters the
coordinator absorbs as deltas with each reply.  Invalidation counts are
the exception — they are derived from the coordinator's own segment
window mirror, which (unlike a crashed worker's cache) survives worker
restarts.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from ..core.evaluator import QueryEngine
from ..core.planner import build_plan
from ..core.queries import Query
from .protocol import (
    ComputeColumns,
    ComputeJob,
    PrefetchWorlds,
    ShardCrashed,
    ShardFailure,
    SyncShard,
)
from .sharding import ShardRouter

__all__ = ["ShardedQueryEngine"]


class ShardedQueryEngine(QueryEngine):
    """A ``QueryEngine`` that delegates world sampling to shard workers.

    Constructed over the full database (filtering and result assembly are
    global); ``router`` maps object ids to shards and ``transport``
    carries protocol commands to the workers.  ``seed`` is mandatory —
    workers must be seeded identically for shard-independent
    reproducibility — and a caller-supplied ``rng`` is rejected for the
    same reason.
    """

    def __init__(
        self,
        db,
        *,
        router: ShardRouter,
        transport,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        if seed is None:
            raise ValueError(
                "ShardedQueryEngine requires seed= (workers derive identical "
                "world entropy from it; an unseeded engine cannot be sharded "
                "reproducibly)"
            )
        if "rng" in kwargs:
            raise ValueError("pass seed=, not rng= (workers must be re-seedable)")
        super().__init__(db, seed=seed, **kwargs)
        self.router = router
        self._transport = transport
        # Last-seen cumulative counters per shard; absorption adds deltas.
        self._shard_counters: dict[int, dict[str, int]] = {
            s: {} for s in range(router.n_shards)
        }
        # Last-seen cumulative metrics snapshots per shard — the registry
        # analogue of _shard_counters (see MetricsRegistry.merge_delta);
        # reset alongside it when a shard is restarted.
        self._shard_metric_seen: dict[int, dict] = {
            s: {} for s in range(router.n_shards)
        }
        #: Per-shard handler busy time (seconds) accumulated since the
        #: coordinator last reset it — the per-shard stage timings surfaced
        #: in ``TickReport.stage_seconds``.
        self.shard_busy_seconds: dict[int, float] = {
            s: 0.0 for s in range(router.n_shards)
        }
        # Mirror of each worker cache's per-(object, n_samples) segment
        # window as ``(epoch, t_lo, t_hi)`` — the replay source for
        # rebuilding a crashed shard's cache bit-identically.
        self._world_windows: dict[tuple[str, int], tuple[int, int, int]] = {}
        # Columns staged by _on_batch_begin, keyed by content; values are
        # FIFO queues (two cache entries can legitimately stage the same
        # content once each after dedup).
        self._staged: dict[tuple, list[np.ndarray]] = {}
        #: Subscription names whose tick is in flight (set by the serving
        #: coordinator) — folded into ShardFailure for attributability.
        self._inflight: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # transport plumbing
    # ------------------------------------------------------------------
    def _absorb(self, shard: int, reply) -> None:
        # Stitch the worker's finished span subtree under whatever span
        # issued this command (absorption runs synchronously after the
        # fan-out joins, on the coordinator's thread).
        if reply.spans:
            self.tracer.attach(reply.spans)
        if self.metrics is not None and reply.metrics:
            self.metrics.merge_delta(
                reply.metrics, self._shard_metric_seen[shard]
            )
        seen = self._shard_counters[shard]
        for key, value in reply.counters.items():
            delta = int(value) - seen.get(key, 0)
            seen[key] = int(value)
            if not delta:
                continue
            if key == "hits":
                self.worlds.hits += delta
            elif key == "partial_hits":
                self.worlds.partial_hits += delta
            elif key == "misses":
                self.worlds.misses += delta
            # "worlds_invalidated" is deliberately NOT absorbed: the
            # coordinator counts invalidations from its own window mirror
            # (see _sync_mutations), which survives worker crashes — a
            # replacement worker has a fresh shard view, sees no mutation
            # delta and would under-report the drop.
        self.shard_busy_seconds[shard] = (
            self.shard_busy_seconds.get(shard, 0.0) + reply.busy_seconds
        )

    def _request(self, shard: int, command):
        if self.tracer.enabled and hasattr(command, "trace"):
            command.trace = self.tracer.context()
        try:
            reply = self._transport.request(shard, command)
        except ShardCrashed as exc:
            raise ShardFailure(exc.shard, exc.detail, self._inflight) from exc
        self._absorb(shard, reply)
        return reply.payload

    def _broadcast(self, commands: dict[int, object]) -> dict[int, object]:
        if self.tracer.enabled:
            ctx = self.tracer.context()
            for command in commands.values():
                if hasattr(command, "trace"):
                    command.trace = ctx
        try:
            replies = self._transport.broadcast(commands)
        except ShardCrashed as exc:
            raise ShardFailure(exc.shard, exc.detail, self._inflight) from exc
        for shard, reply in replies.items():
            self._absorb(shard, reply)
        return {shard: reply.payload for shard, reply in replies.items()}

    def reset_shard_timings(self) -> None:
        for shard in self.shard_busy_seconds:
            self.shard_busy_seconds[shard] = 0.0

    # ------------------------------------------------------------------
    # mutation sync: mirror the decision to every shard
    # ------------------------------------------------------------------
    def _sync_mutations(self) -> None:
        version = self.db.version
        if version == self._mut_seen:
            return
        saved = (self._mut_seen, self.index_updates, self.worlds_invalidated)
        saved_windows = dict(self._world_windows)
        changed = (
            self.db.changed_since(self._mut_seen) if self.incremental else None
        )
        super()._sync_mutations()
        if changed is None:
            self._world_windows.clear()
        else:
            doomed = [k for k in self._world_windows if k[0] in changed]
            for key in doomed:
                del self._world_windows[key]
            # The mirror is 1:1 with worker cache entries (one backend per
            # engine), so its pop count *is* the number of segments the
            # workers drop for this delta.  Counting here — instead of
            # absorbing worker counters — keeps the per-tick count correct
            # across worker crashes, where the dropped entries die with
            # the worker but the mirror remembers them.
            self.worlds_invalidated += len(doomed)
        # Broadcast even when no worker holds a delta of its own: the
        # wholesale flag must reach every shard (the coordinator's log can
        # overflow when a worker's does not), and a selective sync is a
        # cheap no-op on untouched shards.  Synchronizing *now* — at the
        # same point of the tick a single-process engine invalidates —
        # keeps per-tick ``worlds_invalidated`` deltas bit-identical.
        try:
            self._broadcast(
                {
                    shard: SyncShard(wholesale=changed is None)
                    for shard in range(self.router.n_shards)
                }
            )
        except ShardFailure:
            # A dead shard aborts the tick here — the first all-shard
            # contact — with the sync's counter deltas already consumed by
            # a report that will never be produced.  Roll the sync back so
            # the retry tick (after restart_shard) redoes it and re-reports
            # those deltas exactly like the single-process twin; the
            # structural effects (UST update, arena discard, rng-tag pops)
            # are idempotent under the redo.
            self._mut_seen, self.index_updates, self.worlds_invalidated = saved
            self._world_windows = saved_windows
            raise

    # ------------------------------------------------------------------
    # window mirroring (crash-replay bookkeeping)
    # ------------------------------------------------------------------
    def _note_window(self, object_id: str, n: int, lo: int, hi: int) -> None:
        """Mirror one worker-cache lookup's effect on its segment window.

        Same evolution rules as :meth:`WorldCache.states_for`: a new epoch
        (stamp mismatch) replaces the segment, a backward request
        re-anchors at the new start over the union window, anything else
        at most extends forward.
        """
        key = (object_id, int(n))
        epoch = self._draw_epoch
        cur = self._world_windows.get(key)
        lo, hi = int(lo), int(hi)
        if cur is None or cur[0] != epoch:
            self._world_windows[key] = (epoch, lo, hi)
        elif lo < cur[1]:
            self._world_windows[key] = (epoch, lo, max(hi, cur[2]))
        else:
            self._world_windows[key] = (epoch, cur[1], max(cur[2], hi))

    def _note_job_windows(self, jobs) -> None:
        for _kind, _q, times, ids, n in jobs:
            ids = list(ids)
            alive = self.db.alive_matrix(ids, times)
            for i, oid in enumerate(ids):
                row = alive[i]
                if not row.any():
                    continue
                lo, hi = self._cache_window(self.db.get(oid), times[row])
                self._note_window(oid, n, lo, hi)

    # ------------------------------------------------------------------
    # remote computation
    # ------------------------------------------------------------------
    @staticmethod
    def _staged_key(kind, query, times, ids, n) -> tuple:
        q_bytes = query.coords_at(times).tobytes() if query is not None else b""
        return (kind, q_bytes, times.tobytes(), tuple(ids), int(n))

    def _run_jobs(self, jobs: list[tuple]) -> list[np.ndarray]:
        """Fan a batch of column computations out to the owning shards.

        ``jobs`` items are ``(kind, query, times, ids, n)``.  Returns one
        assembled full tensor per job.  On a shared-memory transport the
        coordinator allocates one segment laying every job's full tensor
        out contiguously; each worker writes the columns of the ids it
        owns directly into the segment, so per-shard sub-tensors are never
        pickled back.
        """
        results: list[np.ndarray] = []
        for kind, _q, times, ids, n in jobs:
            shape = (int(n), len(ids), int(times.size))
            if kind == "dist":
                results.append(np.full(shape, np.inf))
            else:
                results.append(np.full(shape, -1, dtype=np.intp))
        per_shard: dict[int, list[ComputeJob]] = {}
        for j, (kind, q, times, ids, n) in enumerate(jobs):
            for shard, cols in self.router.partition_positions(list(ids)).items():
                per_shard.setdefault(shard, []).append(
                    ComputeJob(
                        kind=kind,
                        # The wire form: evaluated coordinates, not the
                        # Query object (whose closures do not pickle).
                        query=None if q is None else q.coords_at(times),
                        times=times,
                        object_ids=tuple(ids[c] for c in cols),
                        n_samples=int(n),
                        job_index=j,
                        col_index=tuple(cols),
                    )
                )
        if not per_shard:
            return results
        epoch = self._draw_epoch
        window = self._batch_window
        shm = None
        offsets: list[int] = []
        if getattr(self._transport, "uses_shm", False):
            total = 0
            for arr in results:
                offsets.append(total)
                total += arr.nbytes
            shm = shared_memory.SharedMemory(create=True, size=max(1, total))
            for shard_jobs in per_shard.values():
                for job in shard_jobs:
                    job.shm_offset = offsets[job.job_index]
                    job.full_shape = results[job.job_index].shape
                    job.dtype = str(results[job.job_index].dtype)
        try:
            # The fan-out span collects each worker's stitched
            # "shard-sweep" child (attached during absorption); "gather"
            # times the cross-shard tensor assembly on the coordinator.
            with self.tracer.span("shard-fanout") as sp_fanout:
                payloads = self._broadcast(
                    {
                        shard: ComputeColumns(
                            epoch=epoch,
                            window=window,
                            jobs=shard_jobs,
                            shm_name=None if shm is None else shm.name,
                        )
                        for shard, shard_jobs in per_shard.items()
                    }
                )
                sp_fanout.set(shards=len(per_shard), jobs=len(jobs))
            with self.tracer.span("gather"):
                if shm is not None:
                    # Every column of every job belongs to exactly one
                    # shard, and each worker writes its whole sub-block
                    # (dead positions included), so the segment is fully
                    # populated.
                    for j, arr in enumerate(results):
                        view = np.ndarray(
                            arr.shape, dtype=arr.dtype, buffer=shm.buf,
                            offset=offsets[j],
                        )
                        arr[...] = view
                else:
                    for shard, payload in payloads.items():
                        for job, sub in zip(per_shard[shard], payload):
                            results[job.job_index][:, list(job.col_index), :] = (
                                sub
                            )
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()
        self._note_job_windows(jobs)
        return results

    def _compute_distance_tensor(
        self, object_ids: list[str], q: Query, times: np.ndarray, n: int
    ) -> np.ndarray:
        ids = tuple(object_ids)
        if not ids:
            return super()._compute_distance_tensor(list(object_ids), q, times, n)
        key = self._staged_key("dist", q, times, ids, n)
        queue = self._staged.get(key)
        if queue:
            staged = queue.pop(0)
            if not queue:
                del self._staged[key]
            return staged
        return self._run_jobs([("dist", q, times, ids, n)])[0]

    def _states_block(
        self, object_ids: list[str], times: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        ids = list(object_ids)
        alive = self.db.alive_matrix(ids, times)
        if not ids or not alive.any():
            states = np.full((n, len(ids), times.size), -1, dtype=np.intp)
            return states, alive
        key = self._staged_key("states", None, times, tuple(ids), n)
        queue = self._staged.get(key)
        if queue:
            staged = queue.pop(0)
            if not queue:
                del self._staged[key]
            return staged, alive
        return self._run_jobs([("states", None, times, tuple(ids), n)])[0], alive

    # ------------------------------------------------------------------
    # batched column staging: one fan-out round per tick
    # ------------------------------------------------------------------
    def _on_batch_begin(self, reqs: list) -> None:
        """Predict the batch's refinement columns and fetch them in one round.

        Re-runs the plan and filter stages per request (both deterministic
        and RNG-free — the filter runs again inside ``evaluate``, at the
        price of one redundant vectorized prune) and replicates the
        refinement-cache dirty-column decision read-only, yielding exactly
        the column sets the evaluations will ask
        ``_compute_distance_tensor`` / ``_states_block`` for.  Identical
        predictions collapse (first consumer wins; a second evaluation
        sharing the cache entry won't recompute at all), so staged work
        matches single-process compute work column for column.  A
        prediction miss is harmless: the evaluation falls back to a live
        per-request fan-out.
        """
        jobs: list[tuple] = []
        keys: list[tuple] = []
        seen: set[tuple] = set()
        for req in reqs:
            try:
                plan = build_plan(req, self.n_samples)
                if plan.resolved_estimator != "sampled":
                    continue
                times = np.asarray(plan.times, dtype=np.intp)
                reverse = req.mode == "reverse_nn"
                pruning = self.filter_objects(
                    req.query, times, k=req.k, normalized=True, reverse=reverse
                )
                ids = list(pruning.influencers)
                if not ids or req.k > len(ids):
                    continue  # nothing to refine / evaluate() raises itself
                n = plan.n_samples
                needed = self._predict_columns(reverse, req, times, ids, n)
                if not needed:
                    continue
                kind = "states" if reverse else "dist"
                query = None if reverse else req.query
                key = self._staged_key(kind, query, times, tuple(needed), n)
                if key in seen:
                    continue
                seen.add(key)
                jobs.append((kind, query, times, tuple(needed), n))
                keys.append(key)
            except Exception:
                continue  # prediction must never fail a batch
        if not jobs:
            return
        for key, arr in zip(keys, self._run_jobs(jobs)):
            self._staged.setdefault(key, []).append(arr)

    def _predict_columns(self, reverse, req, times, ids, n) -> list[str]:
        """The column subset the evaluation's cache logic will recompute."""
        cacheable = self.refine_cache_size > 0 and len(set(ids)) == len(ids)
        if not (cacheable and self.incremental):
            return ids
        if reverse:
            cache_key = (
                "states", req.k, times.tobytes(), tuple(ids), n,
                self.backend, self.fused,
            )
        else:
            cache_key = (
                "dist", req.k, req.query.coords_at(times).tobytes(),
                times.tobytes(), tuple(ids), n, self.backend, self.fused,
            )
        entry = self._refine_cache.get(cache_key)
        stamp = (self._worlds_token, self._draw_epoch)
        if entry is None or entry["stamp"] != stamp:
            return ids
        changed = self.db.changed_since(entry["version"])
        if changed is None:
            return ids
        return [oid for oid in ids if oid in changed]

    def _on_batch_end(self) -> None:
        self._staged.clear()

    # ------------------------------------------------------------------
    # prefetch: route to owners
    # ------------------------------------------------------------------
    def prefetch_worlds(
        self,
        object_ids=None,
        window=None,
        n_samples=None,
    ) -> dict[str, int]:
        self._sync_mutations()
        ids = list(object_ids) if object_ids is not None else self.db.object_ids
        n = self.n_samples if n_samples is None else int(n_samples)
        targets: dict[int, list[str]] = {}
        count = 0
        for oid in ids:
            obj = self.db.get(oid)
            if window is None:
                lo, hi = obj.t_first, obj.t_last
            else:
                lo = max(obj.t_first, int(window[0]))
                hi = min(obj.t_last, int(window[1]))
            if lo > hi:
                continue
            count += 1
            targets.setdefault(self.router.shard_of(oid), []).append(oid)
            self._note_window(oid, n, lo, hi)
        before = (self.worlds.hits, self.worlds.partial_hits, self.worlds.misses)
        if targets:
            self._broadcast(
                {
                    shard: PrefetchWorlds(
                        epoch=self._draw_epoch,
                        targets=tuple(shard_ids),
                        window=None if window is None else (
                            int(window[0]), int(window[1])
                        ),
                        n_samples=n,
                    )
                    for shard, shard_ids in targets.items()
                }
            )
        return {
            "objects": count,
            "hits": self.worlds.hits - before[0],
            "partial_hits": self.worlds.partial_hits - before[1],
            "misses": self.worlds.misses - before[2],
        }
