"""The serving front-end: sharded continuous monitoring with one API.

:class:`ServeCoordinator` owns an unchanged
:class:`~repro.stream.monitor.ContinuousMonitor` whose engine is a
:class:`~repro.serve.engine.ShardedQueryEngine` — all subscription
scheduling, dirty-set derivation, notification delta-ing and reuse
accounting is literally the single-process code; only world sampling
happens inside shard workers.  ``tick`` therefore produces
``Notification``/``TickReport`` streams bit-identical to a
single-process monitor on the same seeded event history, with per-shard
busy times folded into ``TickReport.stage_seconds``.

Event flow per tick: the batch validates centrally (attributable errors,
nothing applied anywhere on rejection), applies to the coordinator's
authoritative database first (so a crashed fan-out can always rebuild a
worker from it), fans per-shard sub-batches to the owners concurrently,
then runs the monitor tick — the monitor picks the mutations up through
the database's mutation log exactly as it does for out-of-band writes.

A worker dying mid-tick surfaces as :class:`ShardFailure` naming the
shard and the in-flight subscriptions; :meth:`restart_shard` rebuilds the
worker from the current database and replays its world-cache windows, so
the next tick resumes bit-identically (the monitor's failed tick never
committed its version cursor and re-derives the delta on retry).
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from time import perf_counter
from typing import Iterable

from ..stream.ingest import StreamEvent
from ..stream.monitor import ContinuousMonitor, TickReport
from ..trajectory.database import TrajectoryDatabase
from .engine import ShardedQueryEngine
from .protocol import (
    ApplyEvents,
    CrashWorker,
    ReplayWorlds,
    ShardFailure,
    WorkerConfig,
)
from .sharding import ShardRouter
from .transport import InlineTransport, ProcessTransport

__all__ = ["ServeCoordinator"]


class ServeCoordinator:
    """Shard-parallel continuous monitoring over one trajectory database.

    Parameters
    ----------
    db:
        The full database; the coordinator keeps the authoritative copy
        (global filtering runs on it) and each worker starts from a shard
        view of it.
    n_shards:
        Worker count; object ids map to shards by content hash, so any
        shard count yields the same results.
    seed:
        Mandatory engine seed, shared by coordinator and workers — the
        root of the shard-determinism argument (see README "Serving").
    mode:
        ``"inline"`` (workers in-process — deterministic, test-friendly,
        zero IPC) or ``"process"`` (one spawned worker process per shard,
        shared-memory world tensors, concurrent fan-out).
    timeout:
        Per-request worker reply deadline (process mode); an overdue or
        dead worker raises :class:`ShardFailure` instead of hanging.
    engine_kwargs:
        Forwarded to the coordinator engine (``n_samples``, ``backend``,
        ``fused``, ``incremental``, ...).  Workers inherit them with
        ``reuse_worlds=True`` and ``refine_cache_size=0`` forced.
    """

    def __init__(
        self,
        db: TrajectoryDatabase,
        *,
        n_shards: int = 2,
        seed: int | None = None,
        mode: str = "inline",
        timeout: float = 120.0,
        **engine_kwargs,
    ) -> None:
        if mode not in ("inline", "process"):
            raise ValueError(f"unknown serve mode {mode!r}")
        if seed is None:
            raise ValueError(
                "ServeCoordinator requires seed= (shard workers must derive "
                "the same world entropy as the coordinator)"
            )
        self.db = db
        self.mode = mode
        self.router = ShardRouter(n_shards)
        self._seed = int(seed)
        self._engine_kwargs = dict(engine_kwargs)
        configs = {
            shard: self._config_for(shard) for shard in range(self.router.n_shards)
        }
        if mode == "process":
            transport = ProcessTransport(configs, timeout=timeout)
        else:
            transport = InlineTransport(configs)
        self._transport = transport
        self.engine = ShardedQueryEngine(
            db,
            router=self.router,
            transport=transport,
            seed=self._seed,
            **engine_kwargs,
        )
        self.monitor = ContinuousMonitor(self.engine)
        self._stream = self.monitor.stream

    def _config_for(self, shard: int) -> WorkerConfig:
        return WorkerConfig(
            shard=shard,
            n_shards=self.router.n_shards,
            db=self.db.shard_view(
                shard, self.router.n_shards, owner=self.router.shard_of
            ),
            seed=self._seed,
            engine_kwargs=dict(self._engine_kwargs),
        )

    # ------------------------------------------------------------------
    # subscriptions (delegated to the unchanged monitor)
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    @property
    def subscriptions(self):
        return self.monitor.subscriptions

    @property
    def now(self):
        return self.monitor.now

    def subscribe(self, request, callback=None, *, name=None, window=None):
        return self.monitor.subscribe(
            request, callback, name=name, window=window
        )

    def unsubscribe(self, name: str) -> None:
        self.monitor.unsubscribe(name)

    def refresh(self) -> None:
        self.monitor.refresh()

    # ------------------------------------------------------------------
    # the serving tick
    # ------------------------------------------------------------------
    def tick(
        self,
        events: Iterable[StreamEvent] = (),
        *,
        now: int | None = None,
    ) -> TickReport:
        """Ingest, fan out, evaluate, merge — one serving cycle.

        Identical contract to :meth:`ContinuousMonitor.tick`, plus
        ``stage_seconds["shard<i>"]`` entries carrying each worker's busy
        time for the tick.
        """
        events = list(events)
        engine = self.engine
        engine._inflight = tuple(s.name for s in self.monitor.subscriptions)
        engine.reset_shard_timings()
        t0 = perf_counter()
        ingest = None
        try:
            if events:
                # Central validation + authoritative apply first: a crash
                # during fan-out must never lose the batch (restart_shard
                # rebuilds workers from this database).  Validation errors
                # name the offending event's index and object id and leave
                # every database untouched.
                ingest = self._stream.apply(events)
                engine._broadcast(
                    {
                        shard: ApplyEvents(events=shard_events)
                        for shard, shard_events in self.router.partition_events(
                            events
                        ).items()
                    }
                )
            apply_seconds = perf_counter() - t0
            effective_now = now
            if effective_now is None and ingest is not None:
                latest = ingest.latest_time
                current = self.monitor.now
                if latest is not None and (current is None or latest > current):
                    effective_now = latest
            report = self.monitor.tick((), now=effective_now)
        finally:
            engine._inflight = ()
        report = replace(report, ingest=ingest)
        # TickReport is frozen but its stage dict is deliberately mutable:
        # fold the fan-out apply cost and per-shard busy times in.
        report.stage_seconds["ingest"] = (
            report.stage_seconds.get("ingest", 0.0) + apply_seconds
        )
        for shard, busy in sorted(engine.shard_busy_seconds.items()):
            report.stage_seconds[f"shard{shard}"] = busy
        return report

    async def tick_async(
        self,
        events: Iterable[StreamEvent] = (),
        *,
        now: int | None = None,
    ) -> TickReport:
        """Awaitable :meth:`tick` (runs in a thread; fan-out overlaps I/O)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, lambda: self.tick(events, now=now))

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def inject_crash(self, shard: int) -> None:
        """Kill one worker (test/ops hook); the next use raises ShardFailure."""
        try:
            self.engine._request(int(shard), CrashWorker())
        except ShardFailure:
            pass

    def restart_shard(self, shard: int) -> dict[str, int]:
        """Rebuild a dead worker from the database and replay its worlds.

        The replacement gets a fresh shard view of the *current* database
        (every applied batch is in it — the coordinator applies before
        fan-out) and re-draws exactly the world-cache segments the
        coordinator mirrored for the current epoch, so held-epoch ticks
        resume bit-identically to a worker that never died.  Counters
        from the replay land between ticks and therefore never skew
        per-tick reuse deltas.
        """
        shard = int(shard)
        engine = self.engine
        self._transport.restart(shard, self._config_for(shard))
        engine._shard_counters[shard] = {}
        epoch = (
            engine._last_batch_epoch
            if engine._last_batch_epoch is not None
            else engine._draw_epoch
        )
        # Objects with mutations the engine has not synced yet must not be
        # replayed: the next tick invalidates and redraws them (the mirror
        # still counts the drop), exactly as on a worker that never died.
        pending: set | None = set()
        if engine.db.version != engine._mut_seen:
            pending = (
                engine.db.changed_since(engine._mut_seen)
                if engine.incremental
                else None
            )
        if pending is None:
            # Wholesale invalidation is pending — nothing is replayable.
            items = ()
        else:
            items = tuple(
                (oid, n, lo, hi)
                for (oid, n), (win_epoch, lo, hi) in sorted(
                    engine._world_windows.items()
                )
                if win_epoch == epoch
                and self.router.shard_of(oid) == shard
                and oid not in pending
            )
        if not items:
            return {"restored": 0}
        return engine._request(shard, ReplayWorlds(epoch=epoch, items=items))

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ServeCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServeCoordinator(n_shards={self.router.n_shards}, "
            f"mode={self.mode!r}, subscriptions={len(self.subscriptions)})"
        )
