"""The serving front-end: sharded continuous monitoring with one API.

:class:`ServeCoordinator` owns an unchanged
:class:`~repro.stream.monitor.ContinuousMonitor` whose engine is a
:class:`~repro.serve.engine.ShardedQueryEngine` — all subscription
scheduling, dirty-set derivation, notification delta-ing and reuse
accounting is literally the single-process code; only world sampling
happens inside shard workers.  ``tick`` therefore produces
``Notification``/``TickReport`` streams bit-identical to a
single-process monitor on the same seeded event history, with per-shard
busy times folded into ``TickReport.stage_seconds``.

Event flow per tick: the batch validates centrally (attributable errors,
nothing applied anywhere on rejection), applies to the coordinator's
authoritative database first (so a crashed fan-out can always rebuild a
worker from it), fans per-shard sub-batches to the owners concurrently,
then runs the monitor tick — the monitor picks the mutations up through
the database's mutation log exactly as it does for out-of-band writes.

A worker dying mid-tick surfaces as :class:`ShardFailure` naming the
shard and the in-flight subscriptions; :meth:`restart_shard` rebuilds the
worker from the current database and replays its world-cache windows, so
the next tick resumes bit-identically (the monitor's failed tick never
committed its version cursor and re-derives the delta on retry).
"""

from __future__ import annotations

import asyncio
from typing import Iterable

from ..obs.exposition import MetricsServer
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER
from ..stream.ingest import StreamEvent
from ..stream.monitor import ContinuousMonitor, TickReport
from ..trajectory.database import TrajectoryDatabase
from .engine import ShardedQueryEngine
from .protocol import (
    ApplyEvents,
    CrashWorker,
    ReplayWorlds,
    ShardFailure,
    WorkerConfig,
)
from .sharding import ShardRouter
from .transport import InlineTransport, ProcessTransport

__all__ = ["ServeCoordinator"]


class ServeCoordinator:
    """Shard-parallel continuous monitoring over one trajectory database.

    Parameters
    ----------
    db:
        The full database; the coordinator keeps the authoritative copy
        (global filtering runs on it) and each worker starts from a shard
        view of it.
    n_shards:
        Worker count; object ids map to shards by content hash, so any
        shard count yields the same results.
    seed:
        Mandatory engine seed, shared by coordinator and workers — the
        root of the shard-determinism argument (see README "Serving").
    mode:
        ``"inline"`` (workers in-process — deterministic, test-friendly,
        zero IPC) or ``"process"`` (one spawned worker process per shard,
        shared-memory world tensors, concurrent fan-out).
    timeout:
        Per-request worker reply deadline (process mode); an overdue or
        dead worker raises :class:`ShardFailure` instead of hanging.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When recording, every tick
        produces one span tree — ingest fan-out, monitor stages, and the
        per-shard worker spans stitched back under the coordinator's
        root (cross-process propagation; see README "Observability").
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; worker registries
        are merged into it every tick and across ``restart_shard``.
        Created automatically when ``metrics_port`` is given.
    metrics_port:
        When not ``None``, start a stdlib HTTP scrape endpoint
        (``/metrics`` Prometheus text, ``/metrics.json``, ``/traces``,
        ``/slow``) on ``127.0.0.1:<port>`` (``0`` = ephemeral; read
        :attr:`metrics_server` ``.port``/``.url``).
    slow_log:
        Optional :class:`repro.obs.SlowQueryLog` fed by the engine's
        evaluations (slow requests keep their explain plan and trace).
    engine_kwargs:
        Forwarded to the coordinator engine (``n_samples``, ``backend``,
        ``fused``, ``incremental``, ...).  Workers inherit them with
        ``reuse_worlds=True`` and ``refine_cache_size=0`` forced.
    """

    def __init__(
        self,
        db: TrajectoryDatabase,
        *,
        n_shards: int = 2,
        seed: int | None = None,
        mode: str = "inline",
        timeout: float = 120.0,
        tracer=None,
        metrics=None,
        metrics_port: int | None = None,
        slow_log=None,
        **engine_kwargs,
    ) -> None:
        if mode not in ("inline", "process"):
            raise ValueError(f"unknown serve mode {mode!r}")
        if seed is None:
            raise ValueError(
                "ServeCoordinator requires seed= (shard workers must derive "
                "the same world entropy as the coordinator)"
            )
        self.db = db
        self.mode = mode
        self.router = ShardRouter(n_shards)
        self._seed = int(seed)
        self._engine_kwargs = dict(engine_kwargs)
        if metrics is None and metrics_port is not None:
            metrics = MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.slow_log = slow_log
        # Workers build their *own* tracer/registry (telemetry objects
        # never ride a WorkerConfig across the spawn boundary); replies
        # ship spans + cumulative snapshots home instead.
        self._telemetry = bool(self.tracer.enabled or metrics is not None)
        configs = {
            shard: self._config_for(shard) for shard in range(self.router.n_shards)
        }
        if mode == "process":
            transport = ProcessTransport(configs, timeout=timeout)
        else:
            transport = InlineTransport(configs)
        self._transport = transport
        self.engine = ShardedQueryEngine(
            db,
            router=self.router,
            transport=transport,
            seed=self._seed,
            tracer=tracer,
            metrics=metrics,
            slow_log=slow_log,
            **engine_kwargs,
        )
        self.monitor = ContinuousMonitor(self.engine)
        self._stream = self.monitor.stream
        self.metrics_server: MetricsServer | None = None
        if metrics_port is not None:
            self.metrics_server = MetricsServer(
                metrics,
                port=metrics_port,
                tracer=self.tracer if self.tracer.enabled else None,
                slow_log=slow_log,
            )

    def _config_for(self, shard: int) -> WorkerConfig:
        return WorkerConfig(
            shard=shard,
            n_shards=self.router.n_shards,
            db=self.db.shard_view(
                shard, self.router.n_shards, owner=self.router.shard_of
            ),
            seed=self._seed,
            engine_kwargs=dict(self._engine_kwargs),
            telemetry=self._telemetry,
        )

    # ------------------------------------------------------------------
    # subscriptions (delegated to the unchanged monitor)
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.router.n_shards

    @property
    def subscriptions(self):
        return self.monitor.subscriptions

    @property
    def now(self):
        return self.monitor.now

    def subscribe(self, request, callback=None, *, name=None, window=None):
        return self.monitor.subscribe(
            request, callback, name=name, window=window
        )

    def unsubscribe(self, name: str) -> None:
        self.monitor.unsubscribe(name)

    def refresh(self) -> None:
        self.monitor.refresh()

    # ------------------------------------------------------------------
    # the serving tick
    # ------------------------------------------------------------------
    def tick(
        self,
        events: Iterable[StreamEvent] = (),
        *,
        now: int | None = None,
    ) -> TickReport:
        """Ingest, fan out, evaluate, merge — one serving cycle.

        Identical contract to :meth:`ContinuousMonitor.tick`, plus
        ``stage_seconds["shard<i>"]`` entries carrying each worker's busy
        time for the tick.
        """
        events = list(events)
        engine = self.engine
        engine._inflight = tuple(s.name for s in self.monitor.subscriptions)
        engine.reset_shard_timings()
        # The serve-tick span roots this tick's trace: the apply fan-out's
        # per-shard ingest spans and the monitor's tick subtree (with the
        # workers' stitched sweep spans) all land under it.
        with self.tracer.span("serve-tick") as sp_tick:
            ingest = None
            try:
                with self.tracer.span("apply-fanout") as sp_apply:
                    if events:
                        # Central validation + authoritative apply first: a
                        # crash during fan-out must never lose the batch
                        # (restart_shard rebuilds workers from this
                        # database).  Validation errors name the offending
                        # event's index and object id and leave every
                        # database untouched.
                        ingest = self._stream.apply(events)
                        engine._broadcast(
                            {
                                shard: ApplyEvents(events=shard_events)
                                for shard, shard_events in (
                                    self.router.partition_events(events).items()
                                )
                            }
                        )
                apply_seconds = sp_apply.duration_seconds
                effective_now = now
                if effective_now is None and ingest is not None:
                    latest = ingest.latest_time
                    current = self.monitor.now
                    if latest is not None and (
                        current is None or latest > current
                    ):
                        effective_now = latest
                report = self.monitor.tick((), now=effective_now)
            except ShardFailure as failure:
                self._observe_failure(failure)
                raise
            finally:
                engine._inflight = ()
            # Fold the fan-out apply cost and per-shard busy times in via
            # the explicit merge constructor — TickReport is frozen and
            # its stage dict must not be mutated behind other holders.
            stages = {
                "ingest": report.stage_seconds.get("ingest", 0.0)
                + apply_seconds
            }
            for shard, busy in sorted(engine.shard_busy_seconds.items()):
                stages[f"shard{shard}"] = busy
            report = report.with_stage_times(stages, ingest=ingest)
            if self.tracer.enabled:
                sp_tick.set(
                    shards=self.router.n_shards,
                    events=len(events),
                    notifications=len(report.notifications),
                )
        if self.metrics is not None:
            self.metrics.counter(
                "serve_ticks_total", help="Completed serving ticks."
            ).inc()
        return report

    def _observe_failure(self, failure: ShardFailure) -> None:
        """Record a mid-tick worker death on every telemetry channel."""
        if self.metrics is not None:
            self.metrics.counter(
                "shard_failures_total",
                help="Worker deaths surfaced mid-tick, by shard.",
                labels={"shard": str(failure.shard)},
            ).inc()
        self.tracer.event(
            "shard-failure",
            shard=failure.shard,
            detail=failure.detail,
            subscriptions=list(failure.subscriptions),
        )

    async def tick_async(
        self,
        events: Iterable[StreamEvent] = (),
        *,
        now: int | None = None,
    ) -> TickReport:
        """Awaitable :meth:`tick` (runs in a thread; fan-out overlaps I/O)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, lambda: self.tick(events, now=now))

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def inject_crash(self, shard: int) -> None:
        """Kill one worker (test/ops hook); the next use raises ShardFailure."""
        try:
            self.engine._request(int(shard), CrashWorker())
        except ShardFailure:
            pass

    def restart_shard(self, shard: int) -> dict[str, int]:
        """Rebuild a dead worker from the database and replay its worlds.

        The replacement gets a fresh shard view of the *current* database
        (every applied batch is in it — the coordinator applies before
        fan-out) and re-draws exactly the world-cache segments the
        coordinator mirrored for the current epoch, so held-epoch ticks
        resume bit-identically to a worker that never died.  Counters
        from the replay land between ticks and therefore never skew
        per-tick reuse deltas.
        """
        shard = int(shard)
        engine = self.engine
        self._transport.restart(shard, self._config_for(shard))
        engine._shard_counters[shard] = {}
        # The replacement worker's registry starts from zero: reset the
        # last-seen snapshot so its first reply merges cleanly.  Totals
        # absorbed before the crash stay in the coordinator's registry —
        # the counters survive the replay.
        engine._shard_metric_seen[shard] = {}
        if self.metrics is not None:
            self.metrics.counter(
                "shard_restarts_total",
                help="Worker rebuild/replay recoveries, by shard.",
                labels={"shard": str(shard)},
            ).inc()
        self.tracer.event(
            "shard-restart",
            shard=shard,
            subscriptions=[s.name for s in self.monitor.subscriptions],
        )
        epoch = (
            engine._last_batch_epoch
            if engine._last_batch_epoch is not None
            else engine._draw_epoch
        )
        # Objects with mutations the engine has not synced yet must not be
        # replayed: the next tick invalidates and redraws them (the mirror
        # still counts the drop), exactly as on a worker that never died.
        pending: set | None = set()
        if engine.db.version != engine._mut_seen:
            pending = (
                engine.db.changed_since(engine._mut_seen)
                if engine.incremental
                else None
            )
        if pending is None:
            # Wholesale invalidation is pending — nothing is replayable.
            items = ()
        else:
            items = tuple(
                (oid, n, lo, hi)
                for (oid, n), (win_epoch, lo, hi) in sorted(
                    engine._world_windows.items()
                )
                if win_epoch == epoch
                and self.router.shard_of(oid) == shard
                and oid not in pending
            )
        if not items:
            return {"restored": 0}
        return engine._request(shard, ReplayWorlds(epoch=epoch, items=items))

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.metrics_server is not None:
            self.metrics_server.close()
            self.metrics_server = None
        self._transport.close()

    def __enter__(self) -> "ServeCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServeCoordinator(n_shards={self.router.n_shards}, "
            f"mode={self.mode!r}, subscriptions={len(self.subscriptions)})"
        )
