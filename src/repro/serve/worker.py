"""Shard worker: one engine over one shard view, driven by commands.

:class:`ShardWorkerState` is the transport-agnostic worker — the inline
transport calls :meth:`ShardWorkerState.handle` directly in-process (the
lockstep test surface), while :func:`worker_main` wraps the same state in
a pipe-served loop for spawned processes.  The worker's engine is built
with the coordinator's seed (identical root world entropy), a shard view
of the database, ``reuse_worlds=True`` (epochs always arrive with the
command, adopted via :meth:`QueryEngine.held_batch`) and
``refine_cache_size=0`` (refinement-tensor caching is coordinator-side;
the worker's job is sampling and distances only).  Workers never touch
the UST-tree: filtering is global and runs on the coordinator, so index
counters live in exactly one place.
"""

from __future__ import annotations

import os
import traceback
from time import perf_counter

import numpy as np

from ..core.evaluator import QueryEngine
from ..core.queries import Query
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from ..stream.ingest import ObservationStream
from .protocol import (
    ApplyEvents,
    ComputeColumns,
    CrashWorker,
    ErrorReply,
    PrefetchWorlds,
    Reply,
    ReplayWorlds,
    Shutdown,
    SyncShard,
    WorkerConfig,
)

__all__ = ["ShardWorkerState", "worker_main"]


def _open_shm(name: str):
    """Attach to a coordinator-created shared-memory segment.

    The child must not register the segment with its own resource
    tracker: the coordinator owns the lifecycle (close + unlink after
    gathering), and a duplicate registration makes Python 3.11's tracker
    warn about — or double-unlink — segments it never created.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API is CPython-internal
        pass
    return shm


class ShardWorkerState:
    """The per-shard engine plus its command handlers."""

    #: Worker-side span name per command type (the coordinator's trace
    #: shows these stitched under the span that issued the command).
    SPAN_NAMES = {
        "ApplyEvents": "shard-ingest",
        "SyncShard": "shard-sync",
        "ComputeColumns": "shard-sweep",
        "PrefetchWorlds": "shard-prefetch",
        "ReplayWorlds": "shard-replay",
    }

    def __init__(self, config: WorkerConfig) -> None:
        self.shard = int(config.shard)
        self.n_shards = int(config.n_shards)
        self.db = config.db
        kwargs = dict(config.engine_kwargs)
        kwargs.pop("rng", None)
        # Telemetry objects never ride the config (they are per-process);
        # a telemetry-enabled worker builds its own.
        for key in ("tracer", "metrics", "slow_log"):
            kwargs.pop(key, None)
        kwargs["reuse_worlds"] = True
        kwargs["refine_cache_size"] = 0
        if getattr(config, "telemetry", False):
            self.tracer = Tracer(id_prefix=f"shard{self.shard}")
            self.metrics = MetricsRegistry()
            kwargs["tracer"] = self.tracer
            kwargs["metrics"] = self.metrics
        else:
            self.tracer = NULL_TRACER
            self.metrics = None
        self.engine = QueryEngine(self.db, seed=config.seed, **kwargs)
        self.stream = ObservationStream(self.db)

    def counters(self) -> dict[str, int]:
        """Cumulative world-cache accounting the coordinator absorbs."""
        engine = self.engine
        return {
            "hits": engine.worlds.hits,
            "partial_hits": engine.worlds.partial_hits,
            "misses": engine.worlds.misses,
            "worlds_invalidated": engine.worlds_invalidated,
        }

    def handle(self, command, shm_open=_open_shm) -> Reply:
        t0 = perf_counter()
        spans: list = []
        if self.tracer.enabled:
            name = self.SPAN_NAMES.get(
                type(command).__name__, type(command).__name__.lower()
            )
            with self.tracer.remote_span(
                name, getattr(command, "trace", None), shard=self.shard
            ) as span:
                payload = self._dispatch(command, shm_open)
            spans = [span.to_dict()]
        else:
            payload = self._dispatch(command, shm_open)
        busy = perf_counter() - t0
        if self.metrics is not None:
            self.metrics.counter(
                "shard_busy_seconds",
                help="Cumulative command-handler busy time, per shard.",
                labels={"shard": str(self.shard)},
            ).inc(busy)
        return Reply(
            payload=payload,
            counters=self.counters(),
            busy_seconds=busy,
            spans=spans,
            metrics=self.metrics.snapshot() if self.metrics is not None else None,
        )

    def _dispatch(self, command, shm_open):
        engine = self.engine
        if isinstance(command, ApplyEvents):
            result = self.stream.apply(command.events)
            return {"applied": result.applied, "dirty": sorted(result.dirty)}
        if isinstance(command, SyncShard):
            if command.wholesale:
                # Mirror the coordinator's wholesale decision even when this
                # shard's own mutation log could name the delta — flush
                # timing must match the single-process engine exactly.
                engine._ust = None
                engine._arena = engine._new_arena()
                engine._worlds_token += 1
                engine._mut_seen = engine.db.version
            else:
                engine._sync_mutations()
            return None
        if isinstance(command, ComputeColumns):
            return self._compute(command, shm_open)
        if isinstance(command, PrefetchWorlds):
            engine._sync_mutations()
            with engine.held_batch(command.epoch):
                return engine.prefetch_worlds(
                    list(command.targets),
                    window=command.window,
                    n_samples=command.n_samples,
                )
        if isinstance(command, ReplayWorlds):
            return self._replay(command)
        raise TypeError(
            f"shard {self.shard}: unknown command {type(command).__name__}"
        )

    def _compute(self, command: ComputeColumns, shm_open):
        engine = self.engine
        engine._sync_mutations()
        blocks = []
        with engine.held_batch(command.epoch, command.window):
            for job in command.jobs:
                times = np.asarray(job.times, dtype=np.intp)
                ids = list(job.object_ids)
                if job.kind == "dist":
                    block = engine._compute_distance_tensor(
                        ids, Query.from_coords(job.query), times,
                        int(job.n_samples),
                    )
                elif job.kind == "states":
                    block, _alive = engine._states_block(
                        ids, times, int(job.n_samples)
                    )
                else:
                    raise ValueError(f"unknown compute kind {job.kind!r}")
                blocks.append(block)
        if command.shm_name is None:
            return blocks
        shm = shm_open(command.shm_name)
        try:
            for job, block in zip(command.jobs, blocks):
                view = np.ndarray(
                    tuple(job.full_shape),
                    dtype=np.dtype(job.dtype),
                    buffer=shm.buf,
                    offset=int(job.shm_offset),
                )
                view[:, list(job.col_index), :] = block
        finally:
            shm.close()
        return None

    def _replay(self, command: ReplayWorlds):
        """Rebuild cache segments from the coordinator's window mirror.

        A one-shot draw over each recorded window is bit-identical — in
        sampled states *and* parked RNG stream — to the original draw
        plus however many forward extensions grew it (the world cache's
        extension contract), so a restarted worker resumes exactly where
        the lost one stood.
        """
        engine = self.engine
        engine._sync_mutations()
        restored = 0
        with engine.held_batch(command.epoch):
            stamp = (engine._worlds_token, engine._draw_epoch)
            for oid, n, lo, hi in command.items:
                if oid not in engine.db:
                    continue
                obj = engine.db.get(oid)
                lo2 = max(int(lo), obj.t_first)
                hi2 = min(int(hi), obj.t_last)
                if lo2 > hi2:
                    continue
                draw, extend = engine._object_sampler(obj, int(n))
                engine.worlds.states_for(
                    key=(obj.object_id, int(n), engine.backend),
                    stamp=stamp,
                    t_lo=lo2,
                    t_hi=hi2,
                    sampler=draw,
                    extender=extend,
                )
                restored += 1
        return {"restored": restored}


def worker_main(conn, config: WorkerConfig) -> None:
    """Pipe-served worker loop (the spawned-process entry point)."""
    state = ShardWorkerState(config)
    while True:
        try:
            command = conn.recv()
        except (EOFError, OSError):
            return
        if isinstance(command, Shutdown):
            try:
                conn.send(Reply(counters=state.counters()))
            except (BrokenPipeError, OSError):
                pass
            return
        if isinstance(command, CrashWorker):
            os._exit(13)  # simulate a hard worker death (no reply, no cleanup)
        try:
            reply = state.handle(command)
        except BaseException:
            # A handler error is not a crash: report it and keep serving.
            try:
                conn.send(ErrorReply(error=traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return
            continue
        conn.send(reply)
