"""NN queries on *certain* trajectory databases — the per-world substrate.

Section 5.2.3: once possible worlds are sampled, "exact NN-queries can be
answered using previous work" on certain trajectories [5, 6, 20, 7, 21, 8].
This module implements those classical semantics for a set of certain
trajectories directly (the query engine uses an equivalent vectorized
formulation internally; this standalone form exists for per-world
inspection, testing, and as the reference implementation of the
continuous-NN interval semantics of Tao et al. [8] / Sistla et al. [21]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..statespace.base import StateSpace
from .trajectory import Trajectory

__all__ = [
    "CNNInterval",
    "distance_profile",
    "nn_at_each_time",
    "exists_nn_objects",
    "forall_nn_objects",
    "continuous_nn_intervals",
]


@dataclass(frozen=True)
class CNNInterval:
    """One continuous-NN result: ``owner`` is nearest during ``[t_lo, t_hi]``."""

    owner: str
    t_lo: int
    t_hi: int

    def __post_init__(self) -> None:
        if self.t_lo > self.t_hi:
            raise ValueError("empty interval")


def distance_profile(
    trajectories: dict[str, Trajectory],
    space: StateSpace,
    q_coords: np.ndarray,
    times: np.ndarray,
) -> dict[str, np.ndarray]:
    """Per object: distance to the query at each time (inf when absent)."""
    times = np.asarray(times, dtype=np.intp)
    q_coords = np.asarray(q_coords, dtype=float)
    if q_coords.shape[0] != times.size:
        raise ValueError("one query location per time required")
    out: dict[str, np.ndarray] = {}
    for oid, traj in trajectories.items():
        dist = np.full(times.size, np.inf)
        covered = np.array([traj.covers(int(t)) for t in times])
        if covered.any():
            states = traj.states_at(times[covered])
            diff = space.coords_of(states) - q_coords[covered]
            dist[covered] = np.sqrt(np.sum(diff * diff, axis=-1))
        out[oid] = dist
    return out


def nn_at_each_time(
    trajectories: dict[str, Trajectory],
    space: StateSpace,
    q_coords: np.ndarray,
    times: np.ndarray,
) -> list[set[str]]:
    """The NN set per query time (ties included; empty when nobody alive).

    This is the Frentzos et al. [5] "for each t the closest trajectory"
    semantics on certain data.
    """
    profiles = distance_profile(trajectories, space, q_coords, times)
    times = np.asarray(times, dtype=np.intp)
    out: list[set[str]] = []
    for col in range(times.size):
        best = np.inf
        for dist in profiles.values():
            best = min(best, dist[col])
        if not np.isfinite(best):
            out.append(set())
            continue
        out.append(
            {oid for oid, dist in profiles.items() if dist[col] <= best}
        )
    return out


def exists_nn_objects(
    trajectories: dict[str, Trajectory],
    space: StateSpace,
    q_coords: np.ndarray,
    times: np.ndarray,
) -> set[str]:
    """Objects that are NN at *some* query time (the ∃ semantics [20])."""
    per_time = nn_at_each_time(trajectories, space, q_coords, times)
    out: set[str] = set()
    for nn_set in per_time:
        out |= nn_set
    return out


def forall_nn_objects(
    trajectories: dict[str, Trajectory],
    space: StateSpace,
    q_coords: np.ndarray,
    times: np.ndarray,
) -> set[str]:
    """Objects that are NN at *every* query time (the ∀ semantics [5])."""
    per_time = nn_at_each_time(trajectories, space, q_coords, times)
    if not per_time:
        return set()
    out = set(per_time[0])
    for nn_set in per_time[1:]:
        out &= nn_set
    return out


def continuous_nn_intervals(
    trajectories: dict[str, Trajectory],
    space: StateSpace,
    q_coords: np.ndarray,
    times: np.ndarray,
) -> list[CNNInterval]:
    """The classical CNN result: maximal intervals with a constant NN.

    Returns one interval per (owner, maximal run); ties produce one
    interval per tied owner, as in the paper's observation that the CNN
    result is "m << |T| time intervals together having the same nearest
    neighbor" (§ 4.3).
    """
    per_time = nn_at_each_time(trajectories, space, q_coords, times)
    times = np.asarray(times, dtype=np.intp)
    # Track open runs per owner; close them when the owner stops being NN
    # or the time axis jumps.
    open_runs: dict[str, int] = {}
    closed: list[CNNInterval] = []
    prev_t: int | None = None
    for col, t in enumerate(times):
        t = int(t)
        contiguous = prev_t is not None and t == prev_t + 1
        current = per_time[col]
        for owner in list(open_runs):
            if owner not in current or not contiguous:
                closed.append(CNNInterval(owner, open_runs.pop(owner), prev_t))
        for owner in current:
            if owner not in open_runs:
                open_runs[owner] = t
        prev_t = t
    for owner, start in open_runs.items():
        closed.append(CNNInterval(owner, start, int(times[-1])))
    closed.sort(key=lambda iv: (iv.t_lo, iv.owner))
    return closed
