"""Workload diagnostics: how uncertain is a trajectory database?

The paper's discussion of the taxi experiments leans on uncertainty
geometry — standing taxis have large uncertainty regions, downtown
density drives candidate counts.  These statistics quantify exactly
those properties for any database: diamond widths, per-object uncertainty
areas, posterior entropy over the observation gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .database import TrajectoryDatabase

__all__ = ["ObjectStatistics", "DatabaseStatistics", "object_statistics", "database_statistics"]


@dataclass(frozen=True)
class ObjectStatistics:
    """Uncertainty profile of one object."""

    object_id: str
    n_observations: int
    span: int
    mean_diamond_width: float
    max_diamond_width: int
    mean_posterior_entropy: float
    peak_posterior_entropy: float
    uncertainty_area: float  # mean spatial MBR area of per-tic diamonds


@dataclass(frozen=True)
class DatabaseStatistics:
    """Aggregates over the whole database."""

    n_objects: int
    n_segments: int
    mean_observations_per_object: float
    mean_diamond_width: float
    max_diamond_width: int
    mean_posterior_entropy: float
    mean_uncertainty_area: float


def object_statistics(db: TrajectoryDatabase, object_id: str) -> ObjectStatistics:
    """Compute the uncertainty profile of one object.

    Width is measured per tic as the number of reachable states (diamond
    support); entropy from the a-posteriori marginals of Algorithm 2.
    """
    obj = db.get(object_id)
    diamonds = db.diamonds_of(object_id)
    widths: list[int] = []
    areas: list[float] = []
    for diamond in diamonds:
        for t in range(diamond.t_start, diamond.t_end + 1):
            states = diamond.states_at(t)
            widths.append(int(states.size))
            if states.size > 1:
                rect = db.space.mbr_of(states)
                areas.append(rect.volume())
            else:
                areas.append(0.0)

    model = obj.adapted
    entropies = [
        model.posterior(t).entropy()
        for t in range(model.t_first, model.t_last + 1)
    ]

    return ObjectStatistics(
        object_id=obj.object_id,
        n_observations=len(obj.observations),
        span=obj.t_last - obj.t_first + 1,
        mean_diamond_width=float(np.mean(widths)),
        max_diamond_width=int(np.max(widths)),
        mean_posterior_entropy=float(np.mean(entropies)),
        peak_posterior_entropy=float(np.max(entropies)),
        uncertainty_area=float(np.mean(areas)),
    )


def database_statistics(db: TrajectoryDatabase) -> DatabaseStatistics:
    """Aggregate uncertainty statistics over every object."""
    if len(db) == 0:
        raise ValueError("empty database has no statistics")
    per_object = [object_statistics(db, oid) for oid in db.object_ids]
    n_segments = sum(len(db.diamonds_of(oid)) for oid in db.object_ids)
    return DatabaseStatistics(
        n_objects=len(per_object),
        n_segments=n_segments,
        mean_observations_per_object=float(
            np.mean([s.n_observations for s in per_object])
        ),
        mean_diamond_width=float(np.mean([s.mean_diamond_width for s in per_object])),
        max_diamond_width=int(np.max([s.max_diamond_width for s in per_object])),
        mean_posterior_entropy=float(
            np.mean([s.mean_posterior_entropy for s in per_object])
        ),
        mean_uncertainty_area=float(
            np.mean([s.uncertainty_area for s in per_object])
        ),
    )
