"""Certain trajectories and uncertain moving objects.

A :class:`Trajectory` is a realized sequence of states over a contiguous
time range (a "possible world" of one object); an :class:`UncertainObject`
is what the database stores — observations plus the a-priori chain — from
which the a-posteriori model is derived lazily.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..markov.adaptation import AdaptedModel, adapt_model
from ..markov.chain import TransitionModel
from ..markov.compiled import CompiledModel
from .observation import ObservationSet

__all__ = ["Trajectory", "UncertainObject"]


@dataclass(frozen=True)
class Trajectory:
    """A certain trajectory: one state per tic starting at ``t_start``."""

    t_start: int
    states: np.ndarray

    def __post_init__(self) -> None:
        states = np.asarray(self.states, dtype=np.intp)
        if states.ndim != 1 or states.size == 0:
            raise ValueError("states must be a non-empty 1-d array")
        object.__setattr__(self, "states", states)

    @property
    def t_end(self) -> int:
        return self.t_start + self.states.size - 1

    def covers(self, t: int) -> bool:
        return self.t_start <= t <= self.t_end

    def state_at(self, t: int) -> int:
        if not self.covers(t):
            raise KeyError(f"time {t} outside trajectory [{self.t_start}, {self.t_end}]")
        return int(self.states[t - self.t_start])

    def states_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`state_at` over a sorted array of covered times."""
        times = np.asarray(times, dtype=np.intp)
        if times.size and (times.min() < self.t_start or times.max() > self.t_end):
            raise KeyError("some times fall outside the trajectory span")
        return self.states[times - self.t_start]

    def __len__(self) -> int:
        return int(self.states.size)

    def observe_every(self, interval: int, phase: int = 0) -> ObservationSet:
        """Thin this trajectory into observations every ``interval`` tics.

        The first and last positions are always kept, matching how the
        paper converts certain taxi trajectories into uncertain ones (every
        l-th GPS measurement becomes an observation, the rest is ground
        truth).
        """
        if interval < 1:
            raise ValueError("interval must be >= 1")
        idx = set(range(phase % interval, self.states.size, interval))
        idx.add(0)
        idx.add(self.states.size - 1)
        return ObservationSet(
            [(self.t_start + i, int(self.states[i])) for i in sorted(idx)]
        )


class UncertainObject:
    """An uncertain moving object: id, observations, a-priori chain.

    The a-posteriori :class:`AdaptedModel` (Algorithm 2) is computed on
    first use and cached; experiment harnesses time this step explicitly
    as the paper's "TS" series.
    """

    def __init__(
        self,
        object_id: str,
        observations: ObservationSet,
        chain: TransitionModel,
        ground_truth: Trajectory | None = None,
        extend_to: int | None = None,
    ) -> None:
        self.object_id = str(object_id)
        self.observations = observations
        self.chain = chain
        #: Held-out full trajectory, retained by synthetic generators for
        #: effectiveness experiments (Fig. 11/12); ``None`` for real data.
        self.ground_truth = ground_truth
        #: Optional extension of the uncertain span past the last
        #: observation (a-priori propagation; see Example 1 of the paper).
        self.extend_to = int(extend_to) if extend_to is not None else None
        if self.extend_to is not None and self.extend_to < observations.last.time:
            raise ValueError("extend_to must not precede the last observation")
        self._adapted: AdaptedModel | None = None

    # ------------------------------------------------------------------
    @property
    def t_first(self) -> int:
        return self.observations.first.time

    @property
    def t_last(self) -> int:
        last = self.observations.last.time
        if self.extend_to is not None:
            return max(last, self.extend_to)
        return last

    def alive_during(self, times: np.ndarray) -> np.ndarray:
        """Boolean mask of which query times fall inside the object's span."""
        times = np.asarray(times, dtype=np.intp)
        return (times >= self.t_first) & (times <= self.t_last)

    def covers_all(self, times: np.ndarray) -> bool:
        return bool(np.all(self.alive_during(times)))

    def covers_any(self, times: np.ndarray) -> bool:
        return bool(np.any(self.alive_during(times)))

    # ------------------------------------------------------------------
    @property
    def adapted(self) -> AdaptedModel:
        """The cached a-posteriori model (computing it on first access)."""
        if self._adapted is None:
            self._adapted = adapt_model(
                self.chain, self.observations.as_pairs(), extend_to=self.extend_to
            )
        return self._adapted

    @property
    def compiled(self) -> CompiledModel:
        """The flattened sampling view of the a-posteriori model."""
        return self.adapted.compiled

    def is_adapted(self) -> bool:
        return self._adapted is not None

    def invalidate_adaptation(self) -> None:
        """Drop the cached model (after swapping chains in ablations)."""
        self._adapted = None

    def sample_states(
        self,
        times: np.ndarray,
        n: int,
        rng: np.random.Generator,
        backend: str = "compiled",
    ) -> np.ndarray:
        """Sample posterior states at the requested (sorted) times.

        All times must lie within the object's span; the returned array has
        shape ``(n, len(times))``.  ``backend`` selects the sampling path —
        see :meth:`AdaptedModel.sample_paths`.
        """
        times = np.asarray(times, dtype=np.intp)
        if times.size == 0:
            return np.empty((n, 0), dtype=np.intp)
        if not self.covers_all(times):
            raise KeyError(
                f"object {self.object_id} does not cover all of {times.tolist()}"
            )
        paths = self.adapted.sample_paths(
            rng, n, int(times.min()), int(times.max()), backend=backend
        )
        return paths[:, times - times.min()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UncertainObject(id={self.object_id!r}, "
            f"span=[{self.t_first}, {self.t_last}], n_obs={len(self.observations)})"
        )
