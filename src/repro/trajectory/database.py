"""The uncertain trajectory database ``D``.

Holds the shared state space, the default a-priori chain and every
:class:`~repro.trajectory.trajectory.UncertainObject`; provides diamond
caching and the hooks the UST-tree and the query engine build on.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..markov.chain import TransitionModel
from ..statespace.base import StateSpace
from .diamonds import Diamond, compute_diamonds
from .observation import Observation, ObservationSet
from .trajectory import Trajectory, UncertainObject

__all__ = ["TrajectoryDatabase"]


class TrajectoryDatabase:
    """A database of uncertain moving objects over one state space.

    Parameters
    ----------
    space:
        The discrete state space shared by all objects.
    chain:
        Default a-priori transition model; individual objects may override
        it (the paper allows per-object matrices, § 3.1, while the taxi
        experiments share a single learned chain).
    """

    #: Retained mutation-log length; :meth:`changed_since` answers exactly
    #: for any version still covered by the log and degrades to ``None``
    #: (the "rebuild everything" signal) for consumers further behind.
    MUTATION_LOG_LIMIT = 4096

    def __init__(self, space: StateSpace, chain: TransitionModel) -> None:
        if chain.n_states != space.n_states:
            raise ValueError(
                f"chain has {chain.n_states} states but space has {space.n_states}"
            )
        self.space = space
        self.chain = chain
        self._objects: dict[str, UncertainObject] = {}
        self._diamonds: dict[str, list[Diamond]] = {}
        self._version = 0
        self._order: dict[str, int] = {}
        self._order_counter = 0
        self._object_versions: dict[str, int] = {}
        #: Entries are ``(version, object_id, t_lo, t_hi)`` where
        #: ``[t_lo, t_hi]`` conservatively covers every time whose derived
        #: filter state (segments, per-tic MBRs, aliveness) the mutation
        #: could have changed.  ``±inf`` marks "unknown extent".
        self._mutation_log: list[tuple[int, str, float, float]] = []
        self._log_floor = 0  # mutations at versions <= floor fell off the log

    @property
    def version(self) -> int:
        """Mutation counter; derived caches compare against it for staleness.

        Both the query engine's UST-tree index and its per-object world
        cache key off this value: any mutation (object added or removed,
        observation ingested) invalidates sampled worlds and index pages on
        the next access, so queries never run against a stale view.
        Consumers that want to invalidate *selectively* instead of
        wholesale ask :meth:`changed_since` which objects a version delta
        touched.
        """
        return self._version

    def _bump_version(
        self, object_id: str, affected: tuple[float, float] | None = None
    ) -> None:
        """Record a mutation of one object, advancing the global version.

        The per-object counter and the bounded mutation log let derived
        structures (UST-tree, world cache, sampling arena) invalidate only
        the touched object instead of flushing wholesale.  ``affected`` is
        the conservative time range the mutation could have changed the
        object's *filter-relevant* state over (segments, per-tic MBRs,
        aliveness); ``None`` records an unbounded range.
        """
        self._version += 1
        if object_id in self._objects:  # removals keep no counter
            self._object_versions[object_id] = self._version
        lo, hi = affected if affected is not None else (-np.inf, np.inf)
        self._mutation_log.append((self._version, object_id, float(lo), float(hi)))
        overflow = len(self._mutation_log) - self.MUTATION_LOG_LIMIT
        if overflow > 0:
            self._log_floor = self._mutation_log[overflow - 1][0]
            del self._mutation_log[:overflow]

    def object_version(self, object_id: str) -> int:
        """The global version at this object's most recent mutation.

        Streaming consumers snapshot these counters to see *which* objects
        an ingest batch touched; the counter survives observation ingestion
        (it advances) but not removal (unknown ids raise, exactly like
        :meth:`get`).
        """
        try:
            return self._object_versions[str(object_id)]
        except KeyError:
            raise KeyError(f"unknown object {object_id!r}") from None

    def changed_since(self, version: int) -> set[str] | None:
        """Object ids mutated after the given global version.

        Returns the exact set of ids touched by any mutation in
        ``(version, self.version]`` — including ids that were removed (a
        consumer must drop its derived state for them) and ids added.
        Returns ``None`` when ``version`` predates the retained mutation
        log (bounded at :attr:`MUTATION_LOG_LIMIT` entries): the caller
        cannot invalidate selectively and must rebuild wholesale.
        """
        version = int(version)
        if version > self._version:
            raise ValueError(
                f"version {version} is ahead of the database ({self._version})"
            )
        if version == self._version:
            return set()
        if version < self._log_floor:
            return None
        return {oid for v, oid, _, _ in self._mutation_log if v > version}

    def changed_ranges_since(
        self, version: int
    ) -> dict[str, tuple[float, float]] | None:
        """Per-object affected time ranges for mutations after ``version``.

        The ranged form of :meth:`changed_since`: maps each touched object
        id to the hull ``[t_lo, t_hi]`` of the time ranges its mutations
        could have changed filter-relevant state over.  An observation
        ingested at ``t`` only reshapes the reachability diamonds between
        its neighboring observations, so a standing query whose times are
        disjoint from every dirty range — and whose influence set contains
        no dirty object — is provably unaffected without re-running the
        filter stage.  Same overflow contract as :meth:`changed_since`:
        ``None`` when ``version`` predates the retained log.
        """
        version = int(version)
        if version > self._version:
            raise ValueError(
                f"version {version} is ahead of the database ({self._version})"
            )
        if version == self._version:
            return {}
        if version < self._log_floor:
            return None
        ranges: dict[str, tuple[float, float]] = {}
        for v, oid, lo, hi in self._mutation_log:
            if v <= version:
                continue
            prev = ranges.get(oid)
            if prev is None:
                ranges[oid] = (lo, hi)
            else:
                ranges[oid] = (min(prev[0], lo), max(prev[1], hi))
        return ranges

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_object(
        self,
        object_id: str,
        observations: ObservationSet | Sequence[Observation | tuple[int, int]],
        chain: TransitionModel | None = None,
        ground_truth: Trajectory | None = None,
        extend_to: int | None = None,
    ) -> UncertainObject:
        """Register an object; returns the stored :class:`UncertainObject`."""
        object_id = str(object_id)
        if object_id in self._objects:
            raise KeyError(f"object {object_id!r} already exists")
        if not isinstance(observations, ObservationSet):
            observations = ObservationSet(observations)
        own_chain = chain if chain is not None else self.chain
        if own_chain.n_states != self.space.n_states:
            raise ValueError("per-object chain must match the database state space")
        obj = UncertainObject(
            object_id, observations, own_chain, ground_truth, extend_to=extend_to
        )
        self._objects[object_id] = obj
        self._order[object_id] = self._order_counter
        self._order_counter += 1
        # A new object contributes filter state only over its own span.
        self._bump_version(object_id, affected=(obj.t_first, obj.t_last))
        return obj

    def remove_object(self, object_id: str) -> None:
        """Drop an object (and its derived caches) from the database.

        Unknown ids raise the same descriptive :class:`KeyError` as
        :meth:`get`, and a failed removal leaves the version counter
        untouched — a no-op must not invalidate every derived cache.
        """
        object_id = str(object_id)
        if object_id not in self._objects:
            raise KeyError(f"unknown object {object_id!r}")
        gone = self._objects[object_id]
        del self._objects[object_id]
        self._diamonds.pop(object_id, None)
        self._order.pop(object_id, None)
        self._object_versions.pop(object_id, None)
        # Removal withdraws the object's contributions over its old span.
        self._bump_version(object_id, affected=(gone.t_first, gone.t_last))

    def add_observation(self, object_id: str, time: int, state: int) -> UncertainObject:
        """Ingest a new observation for an existing object.

        The object's a-posteriori model and diamonds are recomputed lazily;
        index structures detect the change through :attr:`version`.  A
        duplicate observation time raises (observations are certain — two
        conflicting certainties would be a data error).
        """
        old = self.get(object_id)
        observations = ObservationSet(
            list(old.observations) + [Observation(int(time), int(state))]
        )
        extend_to = old.extend_to
        if extend_to is not None and extend_to < observations.last.time:
            extend_to = None  # the new fix supersedes the extrapolation
        replacement = UncertainObject(
            old.object_id,
            observations,
            old.chain,
            ground_truth=old.ground_truth,
            extend_to=extend_to,
        )
        self._objects[old.object_id] = replacement
        self._diamonds.pop(old.object_id, None)
        # A fix at ``t`` reshapes only the diamonds between its neighboring
        # observations: segments outside ``[prev, next]`` recompute to
        # identical reachable sets (pure function of their own endpoint
        # observations and the unchanged a-priori chain).  Appends also
        # cover the superseded extrapolation cone via ``old.t_last``.
        time = int(time)
        obs_times = [o.time for o in old.observations]
        earlier = [t for t in obs_times if t < time]
        later = [t for t in obs_times if t > time]
        lo = float(max(earlier)) if earlier else float(min(time, old.t_first))
        hi = float(min(later)) if later else float(max(time, old.t_last))
        self._bump_version(old.object_id, affected=(lo, hi))
        return replacement

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, object_id: str) -> bool:
        return str(object_id) in self._objects

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects.values())

    def get(self, object_id: str) -> UncertainObject:
        try:
            return self._objects[str(object_id)]
        except KeyError:
            raise KeyError(f"unknown object {object_id!r}") from None

    @property
    def object_ids(self) -> list[str]:
        return list(self._objects)

    def objects_alive_at(self, t: int) -> list[UncertainObject]:
        """Objects whose observation span covers time ``t``."""
        return [o for o in self._objects.values() if o.t_first <= t <= o.t_last]

    def objects_overlapping(self, times: np.ndarray) -> list[UncertainObject]:
        """Objects alive at at least one of the given times."""
        return [o for o in self._objects.values() if o.covers_any(times)]

    def object_index(self, object_id: str) -> int:
        """Stable insertion-order index of an object.

        Monotonically assigned when the object is added and unchanged by
        observation ingestion; removals leave gaps and a re-added id gets a
        fresh (higher) index.  The sampling arena orders its packed blocks
        by this index so the fused layout does not depend on the order a
        query happens to list its candidates in.
        """
        try:
            return self._order[str(object_id)]
        except KeyError:
            raise KeyError(f"unknown object {object_id!r}") from None

    def lifespans(
        self, object_ids: Sequence[str] | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(t_first, t_last)`` arrays for the given ids (default: all).

        The columnar form of :attr:`UncertainObject.t_first` /
        :attr:`~UncertainObject.t_last` — the fused refinement path derives
        its per-object aliveness masks from these instead of looping.
        """
        objs = (
            list(self._objects.values())
            if object_ids is None
            else [self.get(oid) for oid in object_ids]
        )
        t_first = np.asarray([o.t_first for o in objs], dtype=np.intp)
        t_last = np.asarray([o.t_last for o in objs], dtype=np.intp)
        return t_first, t_last

    def alive_matrix(self, object_ids: Sequence[str], times: np.ndarray) -> np.ndarray:
        """Boolean ``(n_objects, n_times)`` lifespan mask.

        ``mask[i, j]`` is true when ``object_ids[i]`` covers ``times[j]``;
        one vectorized comparison instead of per-object
        :meth:`UncertainObject.alive_during` calls.
        """
        times = np.asarray(times, dtype=np.intp)
        t_first, t_last = self.lifespans(object_ids)
        return (times[None, :] >= t_first[:, None]) & (times[None, :] <= t_last[:, None])

    def time_horizon(self) -> tuple[int, int]:
        """Smallest interval covering every object's span."""
        if not self._objects:
            raise ValueError("empty database has no horizon")
        lo = min(o.t_first for o in self._objects.values())
        hi = max(o.t_last for o in self._objects.values())
        return lo, hi

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------
    def shard_view(
        self,
        shard: int,
        n_shards: int,
        owner=None,
    ) -> "TrajectoryDatabase":
        """A new database holding only the objects owned by one shard.

        ``owner`` maps an object id to its owning shard index (default: the
        serving layer's :func:`repro.serve.sharding.shard_of` content hash,
        so views built here agree with the shard router).  The view shares
        the state space, the a-priori chain and the ``UncertainObject``
        instances themselves — objects are immutable value holders, every
        mutation replaces the instance — but carries its own version
        counter, mutation log and diamond cache, so a shard worker's
        engine invalidates independently of the parent.  Insertion-order
        indices restart from zero per view; the fused arena layout inside
        one shard therefore depends only on that shard's own history,
        which is what makes shard counts a pure partitioning choice.
        """
        shard = int(shard)
        n_shards = int(n_shards)
        if not 0 <= shard < n_shards:
            raise ValueError(f"shard {shard} out of range for {n_shards} shards")
        if owner is None:
            from ..serve.sharding import shard_of as _shard_of

            def owner(oid: str) -> int:
                return _shard_of(oid, n_shards)

        view = TrajectoryDatabase(self.space, self.chain)
        for oid, obj in self._objects.items():
            if owner(oid) != shard:
                continue
            view._objects[oid] = obj
            view._order[oid] = view._order_counter
            view._order_counter += 1
            view._bump_version(oid, affected=(obj.t_first, obj.t_last))
        return view

    # ------------------------------------------------------------------
    # diamonds
    # ------------------------------------------------------------------
    def diamonds_of(self, object_id: str) -> list[Diamond]:
        """Cached reachability diamonds of one object."""
        object_id = str(object_id)
        if object_id not in self._diamonds:
            obj = self.get(object_id)
            self._diamonds[object_id] = compute_diamonds(
                obj.chain, obj.observations, extend_to=obj.extend_to
            )
        return self._diamonds[object_id]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrajectoryDatabase(n_objects={len(self)}, "
            f"n_states={self.space.n_states})"
        )
