"""Reachability diamonds ("beads") between consecutive observations.

Between two observations ``(t_i, θ_i)`` and ``(t_{i+1}, θ_{i+1})`` the set of
possible states at time ``t`` is the intersection of what is forward
reachable from ``θ_i`` in ``t - t_i`` steps and backward reachable from
``θ_{i+1}`` in ``t_{i+1} - t`` steps.  These per-tic sets are the exact
supports the UST-tree approximates with minimum bounding rectangles
(Section 6, Example 2), and the support of the "uniform" ablation (U) in
Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from ..markov.chain import TransitionModel
from ..spatial.geometry import Rect
from ..statespace.base import StateSpace
from .observation import ObservationSet

__all__ = ["Diamond", "compute_diamonds", "reachable_states"]


@dataclass
class Diamond:
    """Possible (time, state) pairs between two consecutive observations."""

    t_start: int
    t_end: int
    #: ``states_per_tic[k]`` = possible states at time ``t_start + k``.
    states_per_tic: list[np.ndarray]
    #: Lazy per-tic MBR cache.  A diamond's reachable sets are immutable
    #: (mutations recompute whole diamonds), so the per-tic rects the
    #: UST-tree's refinement step asks for — every standing query re-asks
    #: for the same tics tick after tick — are computed once.
    _mbr_cache: dict = field(default_factory=dict, repr=False, compare=False)
    #: Lazy columnar form of the per-tic MBRs (see :meth:`mbr_arrays`).
    _mbr_arrays: tuple | None = field(default=None, repr=False, compare=False)

    def states_at(self, t: int) -> np.ndarray:
        if not self.t_start <= t <= self.t_end:
            raise KeyError(f"time {t} outside diamond [{self.t_start}, {self.t_end}]")
        return self.states_per_tic[t - self.t_start]

    def all_states(self) -> np.ndarray:
        """Union of possible states over the whole segment."""
        return np.unique(np.concatenate(self.states_per_tic))

    def spatial_mbr(self, space: StateSpace) -> Rect:
        """2-d bounding rect of all reachable states (a UST-tree leaf key)."""
        return space.mbr_of(self.all_states())

    def spatio_temporal_mbr(self, space: StateSpace) -> Rect:
        """3-d box (x, y, time) — what the UST-tree actually indexes."""
        spatial = self.spatial_mbr(space)
        return Rect(
            spatial.lo + (float(self.t_start),),
            spatial.hi + (float(self.t_end),),
        )

    def mbr_at(self, t: int, space: StateSpace) -> Rect:
        """Per-tic bounding rect (the dashed rectangles of Example 2)."""
        rect = self._mbr_cache.get(t)
        if rect is None:
            rect = space.mbr_of(self.states_at(t))
            self._mbr_cache[t] = rect
        return rect

    def mbr_arrays(self, space: StateSpace) -> tuple[np.ndarray, np.ndarray]:
        """All per-tic MBRs as ``(lo, hi)`` arrays of shape ``(n_tics, d)``.

        Row ``k`` is :meth:`mbr_at` of ``t_start + k`` — the columnar form
        the vectorized refinement step gathers from, built once per diamond
        (diamonds are immutable) and sharing the scalar ``mbr_at`` cache so
        the two representations cannot disagree.
        """
        if self._mbr_arrays is None:
            rects = [
                self.mbr_at(self.t_start + k, space)
                for k in range(len(self.states_per_tic))
            ]
            lo = np.asarray([r.lo for r in rects], dtype=float)
            hi = np.asarray([r.hi for r in rects], dtype=float)
            self._mbr_arrays = (lo, hi)
        return self._mbr_arrays

    def width_at(self, t: int) -> int:
        return int(self.states_at(t).size)


def _frontier_step(adjacency: sparse.csr_matrix, frontier: np.ndarray) -> np.ndarray:
    """States reachable in exactly one step from any state in ``frontier``."""
    if frontier.size == 0:
        return frontier
    sub = adjacency[frontier]
    return np.unique(sub.indices)


def reachable_states(
    chain: TransitionModel,
    start_state: int,
    t_start: int,
    steps: int,
    backward: bool = False,
) -> list[np.ndarray]:
    """Per-step reachable sets from (or into) ``start_state``.

    Forward: item ``k`` holds states reachable in exactly ``k`` steps from
    ``start_state`` starting at ``t_start``.  Backward: item ``k`` holds the
    states from which ``start_state`` can be reached in exactly ``k`` steps
    arriving at ``t_start`` (useful for diamond intersection).
    """
    out = [np.asarray([start_state], dtype=np.intp)]
    for k in range(steps):
        if backward:
            matrix = chain.support(t_start - k - 1).T.tocsr()
        else:
            matrix = chain.support(t_start + k)
        out.append(_frontier_step(matrix, out[-1]))
    return out


def compute_diamonds(
    chain: TransitionModel,
    observations: ObservationSet,
    extend_to: int | None = None,
) -> list[Diamond]:
    """One diamond per inter-observation segment.

    With ``extend_to`` past the last observation, a final open "cone" of
    purely forward-reachable states covers the extension (no future
    observation bounds it).

    Raises ``ValueError`` if a segment's intersection is empty at any tic —
    that means the observations contradict the chain's support (the same
    condition :func:`repro.markov.adaptation.adapt_model` detects).
    """
    diamonds: list[Diamond] = []
    for first, second in observations.segments():
        gap = second.time - first.time
        fwd = reachable_states(chain, first.state, first.time, gap, backward=False)
        bwd = reachable_states(chain, second.state, second.time, gap, backward=True)
        per_tic: list[np.ndarray] = []
        for k in range(gap + 1):
            states = np.intersect1d(fwd[k], bwd[gap - k], assume_unique=True)
            if states.size == 0:
                raise ValueError(
                    f"empty diamond at t={first.time + k}: observations "
                    f"({first.time},{first.state}) -> ({second.time},{second.state}) "
                    "contradict the chain"
                )
            per_tic.append(states)
        diamonds.append(
            Diamond(t_start=first.time, t_end=second.time, states_per_tic=per_tic)
        )
    last = observations.last
    if extend_to is not None and extend_to > last.time:
        cone = reachable_states(
            chain, last.state, last.time, extend_to - last.time, backward=False
        )
        diamonds.append(
            Diamond(t_start=last.time, t_end=int(extend_to), states_per_tic=cone)
        )
    if not diamonds:
        # Single-observation object: a degenerate diamond pinning the point.
        obs = observations.first
        diamonds.append(
            Diamond(
                t_start=obs.time,
                t_end=obs.time,
                states_per_tic=[np.asarray([obs.state], dtype=np.intp)],
            )
        )
    return diamonds
