"""Observations: the certain (time, state) anchor points of uncertain objects.

Section 3.1: for each object ``o`` the database stores a time-sorted set of
observations ``Θ^o = {⟨t_i, θ_i⟩}``; observation locations are certain while
anything between observations is uncertain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = ["Observation", "ObservationSet"]


@dataclass(frozen=True, order=True)
class Observation:
    """One certain sighting: object was at ``state`` at ``time``."""

    time: int
    state: int

    def __post_init__(self) -> None:
        if self.state < 0:
            raise ValueError(f"state must be a non-negative index, got {self.state}")


class ObservationSet:
    """A non-empty, strictly time-ordered collection of observations."""

    def __init__(self, observations: Sequence[Observation | tuple[int, int]]) -> None:
        parsed = [
            o if isinstance(o, Observation) else Observation(int(o[0]), int(o[1]))
            for o in observations
        ]
        if not parsed:
            raise ValueError("an object needs at least one observation")
        parsed.sort()
        times = [o.time for o in parsed]
        if len(set(times)) != len(times):
            raise ValueError("observation times must be distinct")
        self._observations = tuple(parsed)
        self._by_time = {o.time: o.state for o in parsed}

    # ------------------------------------------------------------------
    @property
    def first(self) -> Observation:
        return self._observations[0]

    @property
    def last(self) -> Observation:
        return self._observations[-1]

    @property
    def times(self) -> tuple[int, ...]:
        return tuple(o.time for o in self._observations)

    @property
    def span(self) -> tuple[int, int]:
        """Closed time interval covered: (first time, last time)."""
        return self.first.time, self.last.time

    def state_at(self, time: int) -> int | None:
        """Observed state at ``time`` or ``None`` when unobserved."""
        return self._by_time.get(time)

    def as_pairs(self) -> list[tuple[int, int]]:
        """Plain ``(time, state)`` pairs (the adaptation algorithm's input)."""
        return [(o.time, o.state) for o in self._observations]

    def segments(self) -> Iterator[tuple[Observation, Observation]]:
        """Consecutive observation pairs — one uncertainty diamond each."""
        yield from zip(self._observations, self._observations[1:])

    def __iter__(self) -> Iterator[Observation]:
        return iter(self._observations)

    def __len__(self) -> int:
        return len(self._observations)

    def __getitem__(self, idx: int) -> Observation:
        return self._observations[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo, hi = self.span
        return f"ObservationSet(n={len(self)}, span=[{lo}, {hi}])"
