"""Uncertain trajectories: observations, objects, databases, diamonds."""

from .database import TrajectoryDatabase
from .diamonds import Diamond, compute_diamonds, reachable_states
from .observation import Observation, ObservationSet
from .statistics import DatabaseStatistics, ObjectStatistics, database_statistics, object_statistics
from .trajectory import Trajectory, UncertainObject

__all__ = [
    "DatabaseStatistics",
    "Diamond",
    "Observation",
    "ObservationSet",
    "ObjectStatistics",
    "Trajectory",
    "TrajectoryDatabase",
    "UncertainObject",
    "compute_diamonds",
    "database_statistics",
    "object_statistics",
    "reachable_states",
]
