"""Nearest-neighbor statistics over sampled possible worlds.

After the a-posteriori sampler materializes possible worlds (one certain
trajectory per object), the probabilistic queries reduce to counting: the
fraction of worlds in which object ``o`` is the NN of ``q`` at every / some
time of ``T`` estimates ``P∀NN`` / ``P∃NN`` (Section 5.2.3).  These
functions operate on a distance tensor

``dist[w, o, t] = d(q(t), o(t))`` in world ``w``,

with ``np.inf`` marking objects that are not alive at ``t`` (outside their
observation span).  Ties use ``<=`` per Definitions 1-2: all co-located
closest objects count as nearest neighbors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "nn_indicator",
    "knn_indicator",
    "nn_prob_per_time",
    "forall_nn_prob",
    "exists_nn_prob",
    "forall_knn_prob",
    "exists_knn_prob",
    "forall_prob_over_times",
    "reverse_knn_indicator",
    "reverse_forall_knn_prob",
    "reverse_exists_knn_prob",
]

_TIE_RTOL = 1e-12


def _validate(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist, dtype=float)
    if dist.ndim != 3:
        raise ValueError(f"distance tensor must be (worlds, objects, times), got {dist.shape}")
    return dist


def nn_indicator(dist: np.ndarray) -> np.ndarray:
    """Boolean tensor: is object ``o`` a nearest neighbor at ``(w, t)``?

    An object is NN when its distance equals the minimum over all alive
    objects; at times where no object is alive nobody is NN.
    """
    dist = _validate(dist)
    best = dist.min(axis=1, keepdims=True)
    with np.errstate(invalid="ignore"):
        is_nn = dist <= best * (1.0 + _TIE_RTOL)
    return is_nn & np.isfinite(dist)


def knn_indicator(dist: np.ndarray, k: int) -> np.ndarray:
    """Boolean tensor: is object ``o`` among the k nearest at ``(w, t)``?

    Object ``o`` qualifies when fewer than ``k`` alive objects are strictly
    closer (the natural ``<=``-tie extension of Section 8).  Fewer than
    ``k`` strictly closer is exactly ``d <= k-th smallest distance`` (ties
    included on both sides), so one ``np.partition`` per ``(w, t)`` column
    replaces the quadratic all-pairs comparison — O(W·O·T) instead of
    O(W·O²·T), the difference between milliseconds and seconds at the
    paper's candidate scales (Figs. 8, 13) — with bit-identical output
    (pure comparisons, no arithmetic on the distances).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    dist = _validate(dist)
    if k >= dist.shape[1]:
        # Fewer alive objects than k: everyone alive qualifies.
        return np.isfinite(dist)
    kth = np.partition(dist, k - 1, axis=1)[:, k - 1 : k, :]
    return (dist <= kth) & np.isfinite(dist)


def nn_prob_per_time(dist: np.ndarray) -> np.ndarray:
    """``P(o is NN of q at t)`` estimates, shape ``(objects, times)``."""
    return nn_indicator(dist).mean(axis=0)


def forall_nn_prob(dist: np.ndarray) -> np.ndarray:
    """``P∀NN(o, q, D, T)`` estimates over all times of the tensor."""
    return nn_indicator(dist).all(axis=2).mean(axis=0)


def exists_nn_prob(dist: np.ndarray) -> np.ndarray:
    """``P∃NN(o, q, D, T)`` estimates over all times of the tensor."""
    return nn_indicator(dist).any(axis=2).mean(axis=0)


def forall_knn_prob(dist: np.ndarray, k: int) -> np.ndarray:
    """``P∀kNN`` estimates (Section 8)."""
    return knn_indicator(dist, k).all(axis=2).mean(axis=0)


def exists_knn_prob(dist: np.ndarray, k: int) -> np.ndarray:
    """``P∃kNN`` estimates (Section 8)."""
    return knn_indicator(dist, k).any(axis=2).mean(axis=0)


def reverse_knn_indicator(
    dist: np.ndarray, object_dist: np.ndarray, k: int
) -> np.ndarray:
    """Boolean tensor: is the *query* among object ``o``'s k nearest at ``(w, t)``?

    The reverse direction of :func:`knn_indicator`: instead of ranking the
    objects around the query, each object ranks the query against its
    *other-object* competitors.  ``dist[w, o, t]`` is the query distance as
    everywhere else; ``object_dist[w, a, o, t]`` is the inter-object
    distance ``d(a(t), o(t))`` with ``np.inf`` on the diagonal and wherever
    either endpoint is dead.  The query is in ``o``'s kNN set iff fewer
    than ``k`` alive competitors are *strictly* closer to ``o`` than the
    query is — the mirror of the forward rule, so a certain database with
    ``k=1`` makes this exactly the membership test "``q`` is ``o``'s NN".
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    dist = _validate(dist)
    object_dist = np.asarray(object_dist, dtype=float)
    if object_dist.ndim != 4 or object_dist.shape != (
        dist.shape[0],
        dist.shape[1],
        dist.shape[1],
        dist.shape[2],
    ):
        raise ValueError(
            "object distance tensor must be (worlds, objects, objects, times) "
            f"matching dist {dist.shape}, got {object_dist.shape}"
        )
    # closer[w, o, t] = #{a alive : d(a, o) < d(q, o)}; dead competitors and
    # the diagonal carry inf so they never count.
    with np.errstate(invalid="ignore"):
        closer = (object_dist < dist[:, None, :, :]).sum(axis=1)
    return (closer < k) & np.isfinite(dist)


def reverse_forall_knn_prob(
    dist: np.ndarray, object_dist: np.ndarray, k: int
) -> np.ndarray:
    """``P(∀t ∈ T: q ∈ kNN(o, t))`` estimates per object (reverse P∀kNN)."""
    return reverse_knn_indicator(dist, object_dist, k).all(axis=2).mean(axis=0)


def reverse_exists_knn_prob(
    dist: np.ndarray, object_dist: np.ndarray, k: int
) -> np.ndarray:
    """``P(∃t ∈ T: q ∈ kNN(o, t))`` estimates per object (reverse P∃kNN)."""
    return reverse_knn_indicator(dist, object_dist, k).any(axis=2).mean(axis=0)


def forall_prob_over_times(indicator: np.ndarray, time_columns: np.ndarray) -> float:
    """``P∀NN`` over a timestamp subset, from one object's indicator matrix.

    ``indicator`` has shape ``(worlds, times)``; ``time_columns`` selects the
    subset ``T_i ⊆ T`` (column indices).  This is the estimator Algorithm 1
    calls once per Apriori candidate — all candidates share one world pool,
    which preserves the anti-monotonicity the algorithm relies on.
    """
    indicator = np.asarray(indicator, dtype=bool)
    if indicator.ndim != 2:
        raise ValueError("indicator must be (worlds, times)")
    cols = np.asarray(time_columns, dtype=np.intp)
    if cols.size == 0:
        raise ValueError("time subset must be non-empty")
    return float(indicator[:, cols].all(axis=1).mean())
