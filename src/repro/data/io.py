"""Persistence: save and load trajectory databases as ``.npz`` archives.

One archive holds the state-space coordinates, every distinct transition
matrix (deduplicated — the taxi experiments share a single learned chain
across all objects), and per-object observations, spans and optional
ground truth.  Only time-homogeneous chains are supported (the
inhomogeneous chains of the SAT reduction are constructions, not data).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
from scipy import sparse

from ..markov.chain import MarkovChain
from ..statespace.base import StateSpace
from ..trajectory.database import TrajectoryDatabase
from ..trajectory.trajectory import Trajectory

__all__ = ["save_database", "load_database"]

_FORMAT_VERSION = 1


def save_database(db: TrajectoryDatabase, path: str | Path) -> None:
    """Serialize ``db`` (space, chains, objects) into one ``.npz`` file."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {"coords": db.space.coords}

    chains: list[MarkovChain] = []
    chain_index: dict[int, int] = {}

    def register(chain) -> int:
        if not isinstance(chain, MarkovChain):
            raise TypeError(
                "only time-homogeneous MarkovChain objects are serializable"
            )
        key = id(chain)
        if key not in chain_index:
            chain_index[key] = len(chains)
            chains.append(chain)
        return chain_index[key]

    default_idx = register(db.chain)

    manifest: dict = {
        "version": _FORMAT_VERSION,
        "default_chain": default_idx,
        "objects": [],
    }
    for obj in db:
        entry = {
            "id": obj.object_id,
            "chain": register(obj.chain),
            "extend_to": obj.extend_to,
            "ground_truth_start": (
                obj.ground_truth.t_start if obj.ground_truth is not None else None
            ),
        }
        manifest["objects"].append(entry)
        key = f"obj_{obj.object_id}"
        pairs = np.asarray(obj.observations.as_pairs(), dtype=np.int64)
        arrays[f"{key}_obs"] = pairs
        if obj.ground_truth is not None:
            arrays[f"{key}_truth"] = obj.ground_truth.states.astype(np.int64)

    for idx, chain in enumerate(chains):
        mat = chain.matrix.tocsr()
        arrays[f"chain_{idx}_data"] = mat.data
        arrays[f"chain_{idx}_indices"] = mat.indices
        arrays[f"chain_{idx}_indptr"] = mat.indptr
    manifest["n_chains"] = len(chains)
    manifest["n_states"] = db.space.n_states

    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_database(path: str | Path) -> TrajectoryDatabase:
    """Inverse of :func:`save_database`."""
    with np.load(Path(path)) as archive:
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        if manifest.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {manifest.get('version')!r}"
            )
        n = int(manifest["n_states"])
        space = StateSpace(archive["coords"])

        chains = []
        for idx in range(int(manifest["n_chains"])):
            mat = sparse.csr_matrix(
                (
                    archive[f"chain_{idx}_data"],
                    archive[f"chain_{idx}_indices"],
                    archive[f"chain_{idx}_indptr"],
                ),
                shape=(n, n),
            )
            chains.append(MarkovChain(mat))

        db = TrajectoryDatabase(space, chains[int(manifest["default_chain"])])
        for entry in manifest["objects"]:
            key = f"obj_{entry['id']}"
            pairs = [(int(t), int(s)) for t, s in archive[f"{key}_obs"]]
            truth = None
            if entry["ground_truth_start"] is not None:
                truth = Trajectory(
                    int(entry["ground_truth_start"]),
                    archive[f"{key}_truth"].astype(np.intp),
                )
            chain = chains[int(entry["chain"])]
            db.add_object(
                entry["id"],
                pairs,
                chain=chain,
                ground_truth=truth,
                extend_to=entry["extend_to"],
            )
    return db
