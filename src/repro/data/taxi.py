"""Simulated taxi dataset — the T-Drive / Beijing-OSM substitute.

The paper's "Real Data" pipeline (Section 7): GPS logs are map-matched onto
an OSM road graph, interpolated to 1 Hz, discretized to 10-second tics, and
a single shared transition matrix is *learned* by aggregating turning
probabilities at crossroads; trajectories are capped at 100 tics and made
uncertain by keeping every l-th measurement as an observation.

Neither T-Drive nor OSM is available offline, so this module simulates the
part of the pipeline that produces map-matched trajectories and keeps the
rest identical:

* a city road network with a dense core (:mod:`repro.statespace.network`),
* a heterogeneous fleet — standing, slow and fast taxis, with trips biased
  toward downtown (the paper highlights both behaviours: standing taxis
  have wide uncertainty regions, downtown queries see more candidates),
* the chain is learned by transition counting over *training* trips and
  smoothed over the road graph, exactly mirroring the aggregation step;
  database trajectories are held out (leave-one-out, as in Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse.csgraph import dijkstra

from ..markov.chain import MarkovChain
from ..statespace.network import RoadNetwork, build_city_network
from ..trajectory.database import TrajectoryDatabase
from ..trajectory.trajectory import Trajectory

__all__ = ["TaxiConfig", "TaxiDataset", "simulate_trip_trajectory", "generate_taxi_dataset"]

#: Fleet behaviour regimes: (label, fraction, per-tic advance probability).
_REGIMES = (("standing", 0.2, 0.15), ("slow", 0.5, 0.55), ("fast", 0.3, 0.95))


@dataclass(frozen=True)
class TaxiConfig:
    """Parameters of the simulated taxi workload."""

    n_taxis: int = 100
    n_training_taxis: int = 100
    lifetime: int = 100
    horizon: int = 1000
    obs_interval: int = 8  # the paper's l = 8 for the |D| experiment
    blocks: int = 12
    core_blocks: int = 4
    center_bias: float = 2.0  # trip endpoints ∝ exp(-bias · dist / extent)
    smoothing: float = 0.05  # Laplace mass spread over road edges + dwell

    def __post_init__(self) -> None:
        if self.lifetime < 2:
            raise ValueError("lifetime must be at least 2")
        if self.horizon < self.lifetime:
            raise ValueError("horizon must cover the lifetime")
        if self.obs_interval < 1:
            raise ValueError("obs_interval must be >= 1")
        if self.smoothing <= 0:
            raise ValueError("smoothing must be positive (unvisited edges need mass)")


@dataclass
class TaxiDataset:
    """The generated database plus generator artifacts."""

    config: TaxiConfig
    network: RoadNetwork
    chain: MarkovChain
    db: TrajectoryDatabase
    training_trajectories: list[Trajectory] = field(repr=False, default_factory=list)
    rng: np.random.Generator = field(repr=False, default=None)

    def sample_query_state(self, downtown: bool = True) -> int:
        """A query location; downtown sampling mimics the paper's hot area."""
        if downtown:
            weights = _center_weights(self.network, self.config.center_bias)
            return int(self.rng.choice(self.network.space.n_states, p=weights))
        return int(self.rng.integers(self.network.space.n_states))

    def sample_query_times(self, length: int) -> np.ndarray:
        ids = self.db.object_ids
        obj = self.db.get(ids[int(self.rng.integers(len(ids)))])
        span = obj.t_last - obj.t_first + 1
        length = min(length, span)
        offset = int(self.rng.integers(span - length + 1))
        return np.arange(obj.t_first + offset, obj.t_first + offset + length)


def _center_weights(network: RoadNetwork, bias: float) -> np.ndarray:
    dist = network.distance_from_center()
    extent = max(dist.max(), 1e-9)
    w = np.exp(-bias * dist / extent)
    return w / w.sum()


def simulate_trip_trajectory(
    network: RoadNetwork,
    lifetime: int,
    advance_probability: float,
    rng: np.random.Generator,
    center_bias: float = 2.0,
) -> np.ndarray:
    """One taxi's per-tic states: trips between center-biased endpoints.

    The taxi drives shortest paths between successive trip endpoints,
    advancing one road node per tic with the regime's probability and
    dwelling otherwise (standing taxis dwell most of the time).
    """
    weights = _center_weights(network, center_bias)
    n = network.space.n_states
    graph = network.edge_lengths

    states = np.empty(lifetime, dtype=np.intp)
    current = int(rng.choice(n, p=weights))
    route: list[int] = []
    for t in range(lifetime):
        states[t] = current
        if not route:
            # Start a new trip toward a reachable center-biased endpoint.
            for _ in range(20):
                target = int(rng.choice(n, p=weights))
                if target == current:
                    continue
                _, predecessors = dijkstra(
                    graph, indices=current, return_predecessors=True
                )
                if predecessors[target] >= 0:
                    path = [target]
                    while path[-1] != current:
                        path.append(int(predecessors[path[-1]]))
                    route = list(reversed(path[:-1]))
                    break
            else:
                route = []  # isolated pocket: dwell forever
        if route and rng.uniform() < advance_probability:
            current = route.pop(0)
    return states


def learn_chain(
    network: RoadNetwork,
    trajectories: list[Trajectory],
    smoothing: float,
) -> MarkovChain:
    """Aggregate turning probabilities from trips (the paper's training).

    Counts every observed transition (including dwells) and adds Laplace
    mass on all road edges plus self-loops, so held-out trajectories that
    use a rarely-travelled street remain representable.
    """
    n = network.space.n_states
    counts: dict[tuple[int, int], float] = {}
    for traj in trajectories:
        for a, b in zip(traj.states[:-1], traj.states[1:]):
            key = (int(a), int(b))
            counts[key] = counts.get(key, 0.0) + 1.0

    base = network.adjacency.tocoo()
    rows = list(base.row) + list(range(n))
    cols = list(base.col) + list(range(n))
    data = [smoothing] * (base.nnz + n)
    for (a, b), c in counts.items():
        rows.append(a)
        cols.append(b)
        data.append(c)
    matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    matrix.sum_duplicates()
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    matrix = sparse.diags(1.0 / row_sums) @ matrix
    return MarkovChain(matrix.tocsr())


def generate_taxi_dataset(
    config: TaxiConfig,
    rng: np.random.Generator | None = None,
) -> TaxiDataset:
    """Build network, learn the chain on training trips, populate the DB."""
    rng = np.random.default_rng() if rng is None else rng
    network = build_city_network(
        blocks=config.blocks, core_blocks=config.core_blocks, rng=rng
    )

    def regime_probabilities(count: int) -> list[float]:
        labels = []
        for label, fraction, advance in _REGIMES:
            labels.extend([advance] * int(round(fraction * count)))
        while len(labels) < count:
            labels.append(_REGIMES[1][2])
        return labels[:count]

    training: list[Trajectory] = []
    for advance in regime_probabilities(config.n_training_taxis):
        states = simulate_trip_trajectory(
            network, config.lifetime, advance, rng, config.center_bias
        )
        training.append(Trajectory(t_start=0, states=states))

    chain = learn_chain(network, training, config.smoothing)
    db = TrajectoryDatabase(network.space, chain)

    for i, advance in enumerate(regime_probabilities(config.n_taxis)):
        states = simulate_trip_trajectory(
            network, config.lifetime, advance, rng, config.center_bias
        )
        start = int(rng.integers(config.horizon - config.lifetime + 1))
        truth = Trajectory(t_start=start, states=states)
        db.add_object(
            f"taxi{i}", truth.observe_every(config.obs_interval), ground_truth=truth
        )
    return TaxiDataset(
        config=config,
        network=network,
        chain=chain,
        db=db,
        training_trajectories=training,
        rng=rng,
    )
