"""Synthetic trajectory workloads (Section 7, "Artificial Data").

Object creation follows the paper: sample a sequence of waypoint states,
connect them by network shortest paths, and move along the resulting route
for ``lifetime`` tics.  The lag parameter ``v ∈ (0, 1]`` models extra time
spent relative to the shortest path: per tic the object advances along its
route with probability ``v`` and dwells otherwise, so consecutive
observations (taken every ``obs_interval`` tics) are ``≈ v · obs_interval``
route nodes apart.  Dwelling requires the chain to allow self-transitions,
so lagged workloads build their chain with self-loop mass.

The full per-tic trajectory is retained as ground truth for the
effectiveness experiments; the database only sees the thinned observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse.csgraph import dijkstra

from ..statespace.generator import SyntheticSpace, build_synthetic_space
from ..trajectory.database import TrajectoryDatabase
from ..trajectory.trajectory import Trajectory

__all__ = ["SyntheticWorkloadConfig", "SyntheticWorkload", "generate_workload"]


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Parameters mirroring the paper's defaults (scaled by the harness).

    Paper defaults: ``n_states=100_000``, ``branching=8``,
    ``n_objects=10_000``, ``lifetime=100``, ``horizon=1000``,
    ``obs_interval=10`` (11 observations per object).
    """

    n_states: int = 1000
    branching: float = 8.0
    n_objects: int = 100
    lifetime: int = 100
    horizon: int = 1000
    obs_interval: int = 10
    lag: float = 1.0  # the paper's v; 1.0 = no dwell
    self_loops: float | None = None  # None = auto: 0.1 when lag < 1

    def __post_init__(self) -> None:
        if self.lifetime < 2:
            raise ValueError("lifetime must be at least 2 tics")
        if self.horizon < self.lifetime:
            raise ValueError("horizon must cover the lifetime")
        if not 0.0 < self.lag <= 1.0:
            raise ValueError("lag v must be in (0, 1]")
        if self.obs_interval < 1:
            raise ValueError("obs_interval must be >= 1")

    @property
    def effective_self_loops(self) -> float:
        if self.self_loops is not None:
            return self.self_loops
        return 0.1 if self.lag < 1.0 else 0.0


@dataclass
class SyntheticWorkload:
    """A generated database plus its generator artifacts."""

    config: SyntheticWorkloadConfig
    synthetic: SyntheticSpace
    db: TrajectoryDatabase
    rng: np.random.Generator = field(repr=False)

    def sample_query_state(self) -> int:
        """A query state drawn uniformly from the space (paper setup)."""
        return int(self.rng.integers(self.db.space.n_states))

    def sample_query_times(self, length: int) -> np.ndarray:
        """A query interval of ``length`` tics inside some object's span.

        Anchoring at a random object guarantees a non-degenerate workload
        (at least one alive object), as queries over empty regions of the
        time horizon are trivially empty.
        """
        ids = self.db.object_ids
        obj = self.db.get(ids[int(self.rng.integers(len(ids)))])
        span = obj.t_last - obj.t_first + 1
        length = min(length, span)
        offset = int(self.rng.integers(span - length + 1))
        start = obj.t_first + offset
        return np.arange(start, start + length)


def _route_through_waypoints(
    synthetic: SyntheticSpace,
    n_nodes: int,
    rng: np.random.Generator,
    max_restarts: int = 20,
) -> np.ndarray:
    """Concatenate shortest paths between random waypoints until long enough.

    Waypoints are drawn among the nodes reachable from the current position
    (random geometric graphs at moderate ``b`` have small satellite
    components; a start inside one is retried from a fresh node).
    """
    n_states = synthetic.space.n_states
    graph = synthetic.edge_length_graph()
    route = [int(rng.integers(n_states))]
    restarts = 0
    while len(route) < n_nodes:
        dist, predecessors = dijkstra(
            graph,
            indices=route[-1],
            return_predecessors=True,
            directed=True,
        )
        reachable = np.flatnonzero(np.isfinite(dist))
        reachable = reachable[reachable != route[-1]]
        if reachable.size == 0:
            restarts += 1
            if restarts > max_restarts:
                raise RuntimeError(
                    "could not find connected waypoints; the generated network "
                    "is too disconnected — raise the branching factor"
                )
            route = [int(rng.integers(n_states))]
            continue
        target = int(rng.choice(reachable))
        # Reconstruct the shortest path from route[-1] to target.
        path = [target]
        while path[-1] != route[-1]:
            path.append(int(predecessors[path[-1]]))
        route.extend(reversed(path[:-1]))
    return np.asarray(route[:n_nodes], dtype=np.intp)


def _apply_lag(
    route: np.ndarray, lifetime: int, lag: float, rng: np.random.Generator
) -> np.ndarray:
    """Per-tic positions: advance along the route w.p. ``lag``, else dwell."""
    if lag >= 1.0:
        return route[:lifetime]
    states = np.empty(lifetime, dtype=np.intp)
    pos = 0
    for t in range(lifetime):
        states[t] = route[pos]
        if pos < route.size - 1 and rng.uniform() < lag:
            pos += 1
    return states


def generate_workload(
    config: SyntheticWorkloadConfig,
    rng: np.random.Generator | None = None,
) -> SyntheticWorkload:
    """Build the synthetic space, chain and object population."""
    rng = np.random.default_rng() if rng is None else rng
    synthetic = build_synthetic_space(
        config.n_states,
        branching=config.branching,
        rng=rng,
        self_loops=config.effective_self_loops,
    )
    db = TrajectoryDatabase(synthetic.space, synthetic.chain)

    # Route nodes needed: with lag v we advance ~v nodes per tic.
    route_nodes = max(2, int(np.ceil(config.lifetime * config.lag))) + 2
    for i in range(config.n_objects):
        route = _route_through_waypoints(synthetic, route_nodes, rng)
        states = _apply_lag(route, config.lifetime, config.lag, rng)
        start = int(rng.integers(config.horizon - config.lifetime + 1))
        truth = Trajectory(t_start=start, states=states)
        observations = truth.observe_every(config.obs_interval)
        db.add_object(f"o{i}", observations, ground_truth=truth)
    return SyntheticWorkload(config=config, synthetic=synthetic, db=db, rng=rng)
