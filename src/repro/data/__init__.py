"""Workload generators and persistence."""

from .io import load_database, save_database
from .synthetic import SyntheticWorkload, SyntheticWorkloadConfig, generate_workload
from .taxi import TaxiConfig, TaxiDataset, generate_taxi_dataset

__all__ = [
    "SyntheticWorkload",
    "SyntheticWorkloadConfig",
    "TaxiConfig",
    "TaxiDataset",
    "generate_taxi_dataset",
    "generate_workload",
    "load_database",
    "save_database",
]
