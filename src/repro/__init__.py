"""repro — Probabilistic NN queries on uncertain moving object trajectories.

A from-scratch reproduction of Niedermayer, Züfle, Emrich, Renz, Mamoulis,
Chen, Kriegel: "Probabilistic Nearest Neighbor Queries on Uncertain Moving
Object Trajectories", PVLDB 7(3), 2013.

Public API tour
---------------
* Model a discrete world: :class:`StateSpace`, :class:`MarkovChain`
  (or generate one: :func:`build_synthetic_space`, :func:`build_grid_space`,
  :func:`build_city_network`).
* Store uncertain objects: :class:`TrajectoryDatabase`,
  :class:`ObservationSet`, :class:`Trajectory`.
* Query: :class:`QueryEngine` with :class:`Query` references —
  ``evaluate(request)`` runs the staged pipeline (plan → filter →
  estimate → threshold) with pluggable estimators
  (``sampled``/``exact``/``bounds``/``hybrid``/``adaptive``);
  ``evaluate_many`` batches requests over shared worlds; ``explain``
  returns the plan without executing.  The classic entry points —
  ``forall_nn`` (P∀NNQ), ``exists_nn`` (P∃NNQ), ``continuous_nn``
  (PCNNQ), ``nn_probabilities`` — remain as shims, each with optional
  ``k`` (Section 8); ``reverse_nn`` asks the reverse direction (which
  objects have the query among their k likely nearest).
* Classify: :class:`UncertainNNClassifier` turns per-object kNN
  probabilities into label-probability vectors (Angiulli & Fassetti).
* Inspect the machinery: :func:`adapt_model` (Algorithm 2),
  :class:`USTTree` (Section 6 pruning), :mod:`repro.core.exact` oracles,
  :class:`EvaluationReport` on every pipeline result.
* Stream: :class:`ObservationStream` ingests event batches
  (:class:`AddObject` / :class:`AddObservation` / :class:`RemoveObject`)
  with per-object invalidation underneath, and :class:`ContinuousMonitor`
  keeps standing subscriptions (fixed or :class:`SlidingWindow` time
  sets) refreshed with delta notifications per tick.
* Serve: :class:`ServeCoordinator` shards the monitoring workload across
  worker processes (object-id hash → shard views + shared-memory world
  tensors) with notifications and reuse counters bit-identical to a
  single process for any shard count; worker death surfaces as
  :class:`ShardFailure` and ``restart_shard`` resumes bit-identically.
* Observe: :class:`Tracer` records structured span trees for every
  evaluation / monitor tick / serve tick (stitched across worker
  processes), :class:`MetricsRegistry` collects typed counters, gauges
  and latency histograms from every layer, :class:`MetricsServer`
  exposes them over HTTP (Prometheus text + JSON), and
  :class:`SlowQueryLog` keeps the slowest evaluations with their
  explain plans attached.  The default :data:`NULL_TRACER` keeps the
  hot path allocation-free; telemetry never changes result bytes.
"""

from .core.evaluator import QueryEngine
from .core.planner import Explanation, QueryPlan
from .core.queries import (
    ESTIMATOR_NAMES,
    QUERY_MODES,
    Query,
    QueryRequest,
    normalize_times,
)
from .analysis.classification import LabelDistribution, UncertainNNClassifier
from .core.results import (
    EvaluationReport,
    ObjectProbability,
    PCNNEntry,
    PCNNResult,
    QueryResult,
    RawProbabilities,
    ReverseNNResult,
)
from .core.worlds import WorldCache
from .obs import (
    NULL_TRACER,
    MetricsRegistry,
    MetricsServer,
    NullTracer,
    SlowQueryLog,
    Span,
    TraceContext,
    Tracer,
    format_span_tree,
)
from .serve import ServeCoordinator, ShardFailure
from .markov.adaptation import AdaptedModel, ObservationContradictionError, adapt_model
from .markov.chain import InhomogeneousMarkovChain, MarkovChain, uniformized
from .markov.compiled import CompiledModel, compile_model
from .markov.distributions import SparseDistribution
from .spatial.geometry import Rect
from .spatial.rstar import RStarTree
from .spatial.ust_tree import USTTree
from .statespace.base import StateSpace
from .stream.ingest import (
    AddObject,
    AddObservation,
    IngestResult,
    ObservationStream,
    RemoveObject,
)
from .stream.monitor import ContinuousMonitor, Notification, TickReport
from .stream.scheduler import SlidingWindow, Subscription
from .statespace.generator import build_synthetic_space
from .statespace.grid import build_grid_space
from .statespace.network import build_city_network
from .trajectory.database import TrajectoryDatabase
from .trajectory.observation import Observation, ObservationSet
from .trajectory.trajectory import Trajectory, UncertainObject

__version__ = "1.7.0"

__all__ = [
    "AdaptedModel",
    "AddObject",
    "AddObservation",
    "CompiledModel",
    "ContinuousMonitor",
    "ESTIMATOR_NAMES",
    "EvaluationReport",
    "Explanation",
    "IngestResult",
    "InhomogeneousMarkovChain",
    "LabelDistribution",
    "MarkovChain",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TRACER",
    "Notification",
    "NullTracer",
    "Observation",
    "ObservationContradictionError",
    "ObservationSet",
    "ObservationStream",
    "ObjectProbability",
    "PCNNEntry",
    "PCNNResult",
    "QUERY_MODES",
    "Query",
    "QueryEngine",
    "QueryPlan",
    "QueryRequest",
    "QueryResult",
    "RawProbabilities",
    "Rect",
    "RemoveObject",
    "ReverseNNResult",
    "RStarTree",
    "ServeCoordinator",
    "ShardFailure",
    "SlidingWindow",
    "SlowQueryLog",
    "Span",
    "SparseDistribution",
    "StateSpace",
    "Subscription",
    "TickReport",
    "TraceContext",
    "Tracer",
    "Trajectory",
    "TrajectoryDatabase",
    "USTTree",
    "UncertainNNClassifier",
    "UncertainObject",
    "WorldCache",
    "adapt_model",
    "build_city_network",
    "compile_model",
    "format_span_tree",
    "build_grid_space",
    "build_synthetic_space",
    "normalize_times",
    "uniformized",
    "__version__",
]
