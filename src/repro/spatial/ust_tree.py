"""The UST-tree: spatio-temporal index and pruning for PNN queries.

Section 6 of the paper (following Emrich et al., CIKM 2012 [25]): every
inter-observation segment of every object is conservatively approximated by
a minimum bounding rectangle over its reachable states and time interval;
the rectangles are indexed in an R*-tree.  Query evaluation uses the MBRs'
``dmin``/``dmax`` distances to the query to split the database into

* candidates ``C∀(q)`` — objects that may have non-zero ``P∀NN``,
* influence objects ``I∀(q)`` — objects that may affect anyone's
  probability (needed for correct refinement even when pruned themselves),
* pruned objects — irrelevant to both results and probabilities.

For P∃NN queries every influence object is a potential result, so the
refinement set equals ``I(q)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trajectory.database import TrajectoryDatabase
from .geometry import Rect, maxdist_point_rect, mindist_point_rect
from .rstar import RStarTree

__all__ = ["SegmentKey", "PruningResult", "USTTree"]


@dataclass(frozen=True)
class SegmentKey:
    """Identifies one indexed segment: object + diamond index + time span."""

    object_id: str
    segment: int
    t_start: int
    t_end: int


@dataclass
class PruningResult:
    """Outcome of the § 6 filter step.

    Attributes
    ----------
    candidates:
        Object ids possibly satisfying the ∀-semantics (``C∀(q)``).
    influencers:
        Object ids that may influence NN probabilities (``I∀(q)``);
        a superset of ``candidates``.
    prune_distances:
        Per query time: the pruning bound ``min_o dmax(o(t), q(t))``
        (k-th smallest for kNN queries).
    examined_entries:
        Number of index entries touched (index-efficiency metric).
    """

    candidates: list[str]
    influencers: list[str]
    prune_distances: np.ndarray
    examined_entries: int = 0
    dmin_bounds: dict[str, np.ndarray] = field(default_factory=dict)
    dmax_bounds: dict[str, np.ndarray] = field(default_factory=dict)


class USTTree:
    """R*-tree over per-segment spatio-temporal MBRs of a database.

    Parameters
    ----------
    db:
        The uncertain trajectory database to index.
    max_entries:
        R*-tree node capacity.
    """

    def __init__(self, db: TrajectoryDatabase, max_entries: int = 16) -> None:
        self.db = db
        self._by_object: dict[str, list[tuple[Rect, SegmentKey]]] = {}
        items: list[tuple[Rect, SegmentKey]] = []
        for obj in db:
            entries = self._segment_items(obj.object_id)
            self._by_object[obj.object_id] = entries
            items.extend(entries)
        self.tree = RStarTree.bulk_load(items, max_entries=max_entries)
        self._n_segments = len(items)

    def _segment_items(self, object_id: str) -> list[tuple[Rect, SegmentKey]]:
        """Index entries for one object's current reachability diamonds."""
        return [
            (
                diamond.spatio_temporal_mbr(self.db.space),
                SegmentKey(
                    object_id=object_id,
                    segment=seg_idx,
                    t_start=diamond.t_start,
                    t_end=diamond.t_end,
                ),
            )
            for seg_idx, diamond in enumerate(self.db.diamonds_of(object_id))
        ]

    # ------------------------------------------------------------------
    # incremental maintenance (streaming ingest)
    # ------------------------------------------------------------------
    def insert_object(self, object_id: str) -> int:
        """Index one (new) object's segments in place; returns the count.

        Pruning over the updated tree is exactly what a freshly rebuilt
        tree would compute: dmin/dmax bounds are accumulated per entry and
        :meth:`RStarTree.search` returns every intersecting entry whatever
        the tree's internal shape, so only the R*-tree's node layout —
        never a query answer — depends on the insertion history (the
        equivalence-oracle tests assert this).
        """
        object_id = str(object_id)
        if object_id in self._by_object:
            raise KeyError(f"object {object_id!r} is already indexed")
        entries = self._segment_items(object_id)
        self.tree.insert_many(entries)
        self._by_object[object_id] = entries
        self._n_segments += len(entries)
        return len(entries)

    def remove_object(self, object_id: str) -> int:
        """Drop one object's segments from the index; returns the count
        removed (0 when the object was not indexed)."""
        entries = self._by_object.pop(str(object_id), None)
        if entries is None:
            return 0
        removed = self.tree.delete_many(entries)
        self._n_segments -= removed
        return removed

    def update_object(self, object_id: str) -> None:
        """Re-index one object after a database mutation.

        Removes the object's stale segment entries and — when the object
        still exists — reinserts its freshly recomputed diamonds.  This is
        the streaming path's alternative to rebuilding the whole tree per
        ingested observation.
        """
        object_id = str(object_id)
        self.remove_object(object_id)
        if object_id in self.db:
            self.insert_object(object_id)

    def __contains__(self, object_id: str) -> bool:
        return str(object_id) in self._by_object

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_segments

    def segments_overlapping(self, t_lo: int, t_hi: int):
        """Index entries whose time extent intersects ``[t_lo, t_hi]``."""
        space_rect = self.db.space.bounding_rect()
        window = Rect(
            space_rect.lo + (float(t_lo),),
            space_rect.hi + (float(t_hi),),
        )
        return self.tree.search(window)

    # ------------------------------------------------------------------
    def prune(
        self,
        q_coords: np.ndarray,
        times: np.ndarray,
        k: int = 1,
        refine_per_tic: bool = True,
    ) -> PruningResult:
        """Compute candidates and influence objects for a PNN query.

        Parameters
        ----------
        q_coords:
            ``(len(times), d)`` query locations — one per query time
            (constant rows for a query state).
        times:
            Sorted, unique query times ``T``.
        k:
            NN cardinality; pruning uses the k-th smallest ``dmax`` so that
            kNN queries (Section 8) remain correct.
        refine_per_tic:
            After segment-level filtering, tighten ``dmin``/``dmax`` with
            the exact per-tic diamond MBRs of surviving objects.
        """
        times = np.asarray(times, dtype=np.intp)
        if times.size == 0:
            raise ValueError("query time set must be non-empty")
        q_coords = np.asarray(q_coords, dtype=float)
        if q_coords.shape[0] != times.size:
            raise ValueError("one query location per query time is required")

        entries = self.segments_overlapping(int(times.min()), int(times.max()))
        examined = len(entries)

        # Segment-level dmin/dmax per (object, query-time).
        n_t = times.size
        dmin: dict[str, np.ndarray] = {}
        dmax: dict[str, np.ndarray] = {}
        for entry in entries:
            key: SegmentKey = entry.data
            spatial = Rect(entry.rect.lo[:-1], entry.rect.hi[:-1])
            covered = (times >= key.t_start) & (times <= key.t_end)
            if not covered.any():
                continue
            lo = mindist_point_rect(q_coords[covered], spatial)
            hi = maxdist_point_rect(q_coords[covered], spatial)
            if key.object_id not in dmin:
                dmin[key.object_id] = np.full(n_t, np.inf)
                dmax[key.object_id] = np.full(n_t, np.inf)
            idx = np.flatnonzero(covered)
            # Several segments may cover an observation tic; each yields a
            # valid bound, so keep the tightest of each kind.
            dmin[key.object_id][idx] = np.where(
                np.isinf(dmin[key.object_id][idx]),
                lo,
                np.maximum(dmin[key.object_id][idx], lo),
            )
            dmax[key.object_id][idx] = np.minimum(dmax[key.object_id][idx], hi)

        if refine_per_tic:
            self._refine_per_tic(dmin, dmax, q_coords, times)

        return self._classify(dmin, dmax, times, k, examined)

    # ------------------------------------------------------------------
    def _refine_per_tic(
        self,
        dmin: dict[str, np.ndarray],
        dmax: dict[str, np.ndarray],
        q_coords: np.ndarray,
        times: np.ndarray,
    ) -> None:
        """Tighten bounds with per-tic diamond MBRs (Example 2's dashes)."""
        for object_id in dmin:
            diamonds = self.db.diamonds_of(object_id)
            for pos, t in enumerate(times):
                for diamond in diamonds:
                    if diamond.t_start <= t <= diamond.t_end:
                        rect = diamond.mbr_at(int(t), self.db.space)
                        lo = float(mindist_point_rect(q_coords[pos], rect))
                        hi = float(maxdist_point_rect(q_coords[pos], rect))
                        dmin[object_id][pos] = max(dmin[object_id][pos], lo)
                        dmax[object_id][pos] = min(dmax[object_id][pos], hi)
                        break

    def _classify(
        self,
        dmin: dict[str, np.ndarray],
        dmax: dict[str, np.ndarray],
        times: np.ndarray,
        k: int,
        examined: int,
    ) -> PruningResult:
        n_t = times.size
        if not dmin:
            return PruningResult([], [], np.full(n_t, np.inf), examined)

        ids = sorted(dmin)
        dmax_matrix = np.stack([dmax[i] for i in ids])  # (objects, times)
        finite_counts = np.sum(np.isfinite(dmax_matrix), axis=0)
        prune_dist = np.full(n_t, np.inf)
        for col in range(n_t):
            col_vals = np.sort(dmax_matrix[:, col])
            if finite_counts[col] >= k:
                prune_dist[col] = col_vals[k - 1]

        candidates: list[str] = []
        influencers: list[str] = []
        for object_id in ids:
            lo = dmin[object_id]
            alive = np.isfinite(dmax[object_id])
            relevant = alive & (lo <= prune_dist)
            if relevant.any():
                influencers.append(object_id)
            if alive.all() and bool(np.all(lo <= prune_dist)):
                candidates.append(object_id)
        return PruningResult(
            candidates=candidates,
            influencers=influencers,
            prune_distances=prune_dist,
            examined_entries=examined,
            dmin_bounds=dmin,
            dmax_bounds=dmax,
        )
