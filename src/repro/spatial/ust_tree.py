"""The UST-tree: spatio-temporal index and pruning for PNN queries.

Section 6 of the paper (following Emrich et al., CIKM 2012 [25]): every
inter-observation segment of every object is conservatively approximated by
a minimum bounding rectangle over its reachable states and time interval;
the rectangles are indexed in an R*-tree.  Query evaluation uses the MBRs'
``dmin``/``dmax`` distances to the query to split the database into

* candidates ``C∀(q)`` — objects that may have non-zero ``P∀NN``,
* influence objects ``I∀(q)`` — objects that may affect anyone's
  probability (needed for correct refinement even when pruned themselves),
* pruned objects — irrelevant to both results and probabilities.

For P∃NN queries every influence object is a potential result, so the
refinement set equals ``I(q)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trajectory.database import TrajectoryDatabase
from .geometry import Rect, maxdist_point_rect, mindist_point_rect
from .rstar import RStarTree

__all__ = ["SegmentKey", "PruningResult", "USTTree"]


@dataclass
class _SegmentColumns:
    """Columnar snapshot of every indexed segment (the vectorized filter's
    working form).

    One row per segment entry: spatial MBR bounds, covered time span and
    the owning object's position in the lexicographically sorted id list
    (so scatter targets come out in the same order the dict-based
    reference path sorts into).  Rebuilt lazily after any index mutation.
    """

    ids: list[str]
    lo: np.ndarray  # (E, d) spatial MBR lower bounds
    hi: np.ndarray  # (E, d) spatial MBR upper bounds
    t0: np.ndarray  # (E,) segment start times
    t1: np.ndarray  # (E,) segment end times
    obj: np.ndarray  # (E,) row -> index into ``ids``


@dataclass(frozen=True)
class SegmentKey:
    """Identifies one indexed segment: object + diamond index + time span."""

    object_id: str
    segment: int
    t_start: int
    t_end: int


@dataclass
class PruningResult:
    """Outcome of the § 6 filter step.

    Attributes
    ----------
    candidates:
        Object ids possibly satisfying the ∀-semantics (``C∀(q)``).
    influencers:
        Object ids that may influence NN probabilities (``I∀(q)``);
        a superset of ``candidates``.
    prune_distances:
        Per query time: the pruning bound ``min_o dmax(o(t), q(t))``
        (k-th smallest for kNN queries).
    examined_entries:
        Number of index entries touched (index-efficiency metric).
    """

    candidates: list[str]
    influencers: list[str]
    prune_distances: np.ndarray
    examined_entries: int = 0
    dmin_bounds: dict[str, np.ndarray] = field(default_factory=dict)
    dmax_bounds: dict[str, np.ndarray] = field(default_factory=dict)


class USTTree:
    """R*-tree over per-segment spatio-temporal MBRs of a database.

    Parameters
    ----------
    db:
        The uncertain trajectory database to index.
    max_entries:
        R*-tree node capacity.
    """

    def __init__(self, db: TrajectoryDatabase, max_entries: int = 16) -> None:
        self.db = db
        self._by_object: dict[str, list[tuple[Rect, SegmentKey]]] = {}
        items: list[tuple[Rect, SegmentKey]] = []
        for obj in db:
            entries = self._segment_items(obj.object_id)
            self._by_object[obj.object_id] = entries
            items.extend(entries)
        self.tree = RStarTree.bulk_load(items, max_entries=max_entries)
        self._n_segments = len(items)
        # Lazy vectorized-filter state: the columnar segment snapshot and
        # the per-object (tic -> diamond MBR) refinement tables.  Both are
        # derived from the indexed segments, so any index mutation drops
        # them (the snapshot wholesale, the tables per object).
        self._columns: _SegmentColumns | None = None
        self._refine_tables: dict[str, tuple] = {}
        #: Optional :class:`repro.obs.MetricsRegistry` feed — the owning
        #: engine binds its registry here so prune volume is scrapeable
        #: (``ust_prune_calls_total`` / ``ust_examined_entries_total``).
        self.metrics = None

    def _segment_items(self, object_id: str) -> list[tuple[Rect, SegmentKey]]:
        """Index entries for one object's current reachability diamonds."""
        return [
            (
                diamond.spatio_temporal_mbr(self.db.space),
                SegmentKey(
                    object_id=object_id,
                    segment=seg_idx,
                    t_start=diamond.t_start,
                    t_end=diamond.t_end,
                ),
            )
            for seg_idx, diamond in enumerate(self.db.diamonds_of(object_id))
        ]

    # ------------------------------------------------------------------
    # incremental maintenance (streaming ingest)
    # ------------------------------------------------------------------
    def insert_object(self, object_id: str) -> int:
        """Index one (new) object's segments in place; returns the count.

        Pruning over the updated tree is exactly what a freshly rebuilt
        tree would compute: dmin/dmax bounds are accumulated per entry and
        :meth:`RStarTree.search` returns every intersecting entry whatever
        the tree's internal shape, so only the R*-tree's node layout —
        never a query answer — depends on the insertion history (the
        equivalence-oracle tests assert this).
        """
        object_id = str(object_id)
        if object_id in self._by_object:
            raise KeyError(f"object {object_id!r} is already indexed")
        entries = self._segment_items(object_id)
        self.tree.insert_many(entries)
        self._by_object[object_id] = entries
        self._n_segments += len(entries)
        self._columns = None
        self._refine_tables.pop(object_id, None)
        return len(entries)

    def remove_object(self, object_id: str) -> int:
        """Drop one object's segments from the index; returns the count
        removed (0 when the object was not indexed)."""
        object_id = str(object_id)
        entries = self._by_object.pop(object_id, None)
        if entries is None:
            return 0
        removed = self.tree.delete_many(entries)
        self._n_segments -= removed
        self._columns = None
        self._refine_tables.pop(object_id, None)
        return removed

    def update_object(self, object_id: str) -> None:
        """Re-index one object after a database mutation.

        Removes the object's stale segment entries and — when the object
        still exists — reinserts its freshly recomputed diamonds.  This is
        the streaming path's alternative to rebuilding the whole tree per
        ingested observation.
        """
        object_id = str(object_id)
        self.remove_object(object_id)
        if object_id in self.db:
            self.insert_object(object_id)

    def __contains__(self, object_id: str) -> bool:
        return str(object_id) in self._by_object

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_segments

    def segments_overlapping(self, t_lo: int, t_hi: int):
        """Index entries whose time extent intersects ``[t_lo, t_hi]``."""
        space_rect = self.db.space.bounding_rect()
        window = Rect(
            space_rect.lo + (float(t_lo),),
            space_rect.hi + (float(t_hi),),
        )
        return self.tree.search(window)

    # ------------------------------------------------------------------
    def prune(
        self,
        q_coords: np.ndarray,
        times: np.ndarray,
        k: int = 1,
        refine_per_tic: bool = True,
        vectorized: bool = True,
    ) -> PruningResult:
        """Compute candidates and influence objects for a PNN query.

        Parameters
        ----------
        q_coords:
            ``(len(times), d)`` query locations — one per query time
            (constant rows for a query state).
        times:
            Sorted, unique query times ``T``.
        k:
            NN cardinality; pruning uses the k-th smallest ``dmax`` so that
            kNN queries (Section 8) remain correct.
        refine_per_tic:
            After segment-level filtering, tighten ``dmin``/``dmax`` with
            the exact per-tic diamond MBRs of surviving objects.
        vectorized:
            ``True`` (default) runs the columnar filter: one broadcasted
            ``mindist``/``maxdist`` over all (segment, covered-tic) pairs,
            scattered per (object, tic) with ``np.maximum.at`` /
            ``np.minimum.at``, and a gathered per-tic MBR refinement.
            ``False`` keeps the per-entry python loop as the reference
            oracle the parity tests compare against.  Both are
            bit-identical: max/min accumulation is order-independent and
            the elementwise distance arithmetic is the same.
        """
        times = np.asarray(times, dtype=np.intp)
        if times.size == 0:
            raise ValueError("query time set must be non-empty")
        q_coords = np.asarray(q_coords, dtype=float)
        if q_coords.shape[0] != times.size:
            raise ValueError("one query location per query time is required")
        if vectorized:
            result = self._prune_vectorized(q_coords, times, k, refine_per_tic)
        else:
            result = self._prune_reference(q_coords, times, k, refine_per_tic)
        if self.metrics is not None:
            self.metrics.counter(
                "ust_prune_calls_total",
                help="Filter-stage prune passes over the UST-tree.",
            ).inc()
            self.metrics.counter(
                "ust_examined_entries_total",
                help="Index entries examined across prune passes.",
            ).inc(result.examined_entries)
        return result

    def _prune_reference(
        self,
        q_coords: np.ndarray,
        times: np.ndarray,
        k: int,
        refine_per_tic: bool,
    ) -> PruningResult:
        """Per-entry filter loop (the pre-vectorization implementation)."""
        entries = self.segments_overlapping(int(times.min()), int(times.max()))
        examined = len(entries)

        # Segment-level dmin/dmax per (object, query-time).
        n_t = times.size
        dmin: dict[str, np.ndarray] = {}
        dmax: dict[str, np.ndarray] = {}
        for entry in entries:
            key: SegmentKey = entry.data
            spatial = Rect(entry.rect.lo[:-1], entry.rect.hi[:-1])
            covered = (times >= key.t_start) & (times <= key.t_end)
            if not covered.any():
                continue
            lo = mindist_point_rect(q_coords[covered], spatial)
            hi = maxdist_point_rect(q_coords[covered], spatial)
            if key.object_id not in dmin:
                dmin[key.object_id] = np.full(n_t, np.inf)
                dmax[key.object_id] = np.full(n_t, np.inf)
            idx = np.flatnonzero(covered)
            # Several segments may cover an observation tic; each yields a
            # valid bound, so keep the tightest of each kind.
            dmin[key.object_id][idx] = np.where(
                np.isinf(dmin[key.object_id][idx]),
                lo,
                np.maximum(dmin[key.object_id][idx], lo),
            )
            dmax[key.object_id][idx] = np.minimum(dmax[key.object_id][idx], hi)

        if refine_per_tic:
            self._refine_per_tic(dmin, dmax, q_coords, times)

        return self._classify(dmin, dmax, times, k, examined)

    # ------------------------------------------------------------------
    def _refine_per_tic(
        self,
        dmin: dict[str, np.ndarray],
        dmax: dict[str, np.ndarray],
        q_coords: np.ndarray,
        times: np.ndarray,
    ) -> None:
        """Tighten bounds with per-tic diamond MBRs (Example 2's dashes).

        Observation tics belong to *two* adjacent diamonds (each pins the
        observed state from its own side); every covering diamond yields a
        valid bound, so the tightest of each kind is kept across all of
        them — stopping at the first match would discard whichever
        neighbor happens to bound tighter.
        """
        for object_id in dmin:
            diamonds = self.db.diamonds_of(object_id)
            for pos, t in enumerate(times):
                for diamond in diamonds:
                    if diamond.t_start <= t <= diamond.t_end:
                        rect = diamond.mbr_at(int(t), self.db.space)
                        lo = float(mindist_point_rect(q_coords[pos], rect))
                        hi = float(maxdist_point_rect(q_coords[pos], rect))
                        dmin[object_id][pos] = max(dmin[object_id][pos], lo)
                        dmax[object_id][pos] = min(dmax[object_id][pos], hi)

    def _classify(
        self,
        dmin: dict[str, np.ndarray],
        dmax: dict[str, np.ndarray],
        times: np.ndarray,
        k: int,
        examined: int,
    ) -> PruningResult:
        n_t = times.size
        if not dmin:
            return PruningResult([], [], np.full(n_t, np.inf), examined)

        ids = sorted(dmin)
        dmax_matrix = np.stack([dmax[i] for i in ids])  # (objects, times)
        finite_counts = np.sum(np.isfinite(dmax_matrix), axis=0)
        prune_dist = np.full(n_t, np.inf)
        for col in range(n_t):
            col_vals = np.sort(dmax_matrix[:, col])
            if finite_counts[col] >= k:
                prune_dist[col] = col_vals[k - 1]

        candidates: list[str] = []
        influencers: list[str] = []
        for object_id in ids:
            lo = dmin[object_id]
            alive = np.isfinite(dmax[object_id])
            relevant = alive & (lo <= prune_dist)
            if relevant.any():
                influencers.append(object_id)
            if alive.all() and bool(np.all(lo <= prune_dist)):
                candidates.append(object_id)
        return PruningResult(
            candidates=candidates,
            influencers=influencers,
            prune_distances=prune_dist,
            examined_entries=examined,
            dmin_bounds=dmin,
            dmax_bounds=dmax,
        )

    # ------------------------------------------------------------------
    # vectorized filter-refine
    # ------------------------------------------------------------------
    def _segment_columns(self) -> _SegmentColumns:
        """The columnar segment snapshot, rebuilt after index mutations."""
        cols = self._columns
        if cols is None:
            ids = sorted(self._by_object)
            dim = len(self.db.space.bounding_rect().lo)
            lo: list = []
            hi: list = []
            t0: list = []
            t1: list = []
            obj: list = []
            for pos, oid in enumerate(ids):
                for rect, key in self._by_object[oid]:
                    lo.append(rect.lo[:-1])
                    hi.append(rect.hi[:-1])
                    t0.append(key.t_start)
                    t1.append(key.t_end)
                    obj.append(pos)
            cols = _SegmentColumns(
                ids=ids,
                lo=np.asarray(lo, dtype=float).reshape(len(lo), dim),
                hi=np.asarray(hi, dtype=float).reshape(len(hi), dim),
                t0=np.asarray(t0, dtype=np.intp),
                t1=np.asarray(t1, dtype=np.intp),
                obj=np.asarray(obj, dtype=np.intp),
            )
            self._columns = cols
        return cols

    def _refine_table(self, object_id: str) -> tuple:
        """Per-object ``(t_base, t_hi, covered, slots)`` refinement table.

        ``slots`` is a list of ``(lo, hi)`` array pairs of shape
        ``(n_tics, d)`` indexed by ``t - t_base``: slot 0 holds each tic's
        first covering diamond's MBR, slot ``s > 0`` the ``s+1``-th where
        one exists (observation tics are covered by both adjacent
        diamonds).  Tics a slot does not cover are back-filled with slot
        0's rect — max/min accumulation is idempotent, so applying the
        same rect twice changes nothing and the gather needs no per-slot
        validity mask.  ``covered`` masks tics no diamond covers at all.
        """
        table = self._refine_tables.get(object_id)
        if table is None:
            diamonds = self.db.diamonds_of(object_id)
            space = self.db.space
            t_base = min(d.t_start for d in diamonds)
            t_hi = max(d.t_end for d in diamonds)
            length = t_hi - t_base + 1
            count = np.zeros(length, dtype=np.intp)
            slots: list[tuple[np.ndarray, np.ndarray]] = []
            for dia in diamonds:
                dlo, dhi = dia.mbr_arrays(space)
                idx = np.arange(dia.t_start, dia.t_end + 1) - t_base
                depth = count[idx]
                while len(slots) <= int(depth.max()):
                    dim = dlo.shape[1]
                    slots.append(
                        (np.zeros((length, dim)), np.zeros((length, dim)))
                    )
                for s in range(int(depth.max()) + 1):
                    at = idx[depth == s]
                    slots[s][0][at] = dlo[depth == s]
                    slots[s][1][at] = dhi[depth == s]
                count[idx] += 1
            covered = count > 0
            for s in range(1, len(slots)):
                fill = count <= s
                slots[s][0][fill] = slots[0][0][fill]
                slots[s][1][fill] = slots[0][1][fill]
            table = (t_base, t_hi, covered, slots)
            self._refine_tables[object_id] = table
        return table

    def _refine_vectorized(
        self,
        dmin_mat: np.ndarray,
        dmax_mat: np.ndarray,
        ids: list[str],
        q_coords: np.ndarray,
        times: np.ndarray,
    ) -> None:
        """Tighten the bound matrices with gathered per-tic diamond MBRs.

        The vectorized form of :meth:`_refine_per_tic`: per-object tables
        are concatenated (with row offsets), every (object, in-span tic)
        pair gathers its rects, and one broadcasted ``mindist``/``maxdist``
        per slot replaces the python triple loop.  Identical elementwise
        arithmetic and order-independent max/min keep it bit-identical to
        the reference loop.
        """
        tables = [self._refine_table(oid) for oid in ids]
        t_base = np.asarray([t[0] for t in tables], dtype=np.intp)
        t_hi = np.asarray([t[1] for t in tables], dtype=np.intp)
        lengths = np.asarray([t[2].size for t in tables], dtype=np.intp)
        offsets = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        cat_cover = np.concatenate([t[2] for t in tables])
        max_slots = max(len(t[3]) for t in tables)
        in_span = (times[None, :] >= t_base[:, None]) & (
            times[None, :] <= t_hi[:, None]
        )
        pair_o, pair_t = np.nonzero(in_span)
        if pair_o.size == 0:
            return
        row = offsets[pair_o] + (times[pair_t] - t_base[pair_o])
        keep = cat_cover[row]
        pair_o, pair_t, row = pair_o[keep], pair_t[keep], row[keep]
        if pair_o.size == 0:
            return
        pts = q_coords[pair_t]
        for s in range(max_slots):
            # Objects without slot ``s`` contribute their slot 0 again
            # (idempotent under max/min).
            cat_lo = np.concatenate(
                [t[3][s][0] if s < len(t[3]) else t[3][0][0] for t in tables]
            )
            cat_hi = np.concatenate(
                [t[3][s][1] if s < len(t[3]) else t[3][0][1] for t in tables]
            )
            rlo = cat_lo[row]
            rhi = cat_hi[row]
            delta = np.maximum(np.maximum(rlo - pts, pts - rhi), 0.0)
            lo_d = np.sqrt(np.sum(delta * delta, axis=-1))
            delta = np.maximum(np.abs(pts - rlo), np.abs(rhi - pts))
            hi_d = np.sqrt(np.sum(delta * delta, axis=-1))
            dmin_mat[pair_o, pair_t] = np.maximum(dmin_mat[pair_o, pair_t], lo_d)
            dmax_mat[pair_o, pair_t] = np.minimum(dmax_mat[pair_o, pair_t], hi_d)

    def _prune_vectorized(
        self,
        q_coords: np.ndarray,
        times: np.ndarray,
        k: int,
        refine_per_tic: bool,
    ) -> PruningResult:
        """Columnar filter-refine: one broadcasted distance pass over all
        (segment, covered-tic) pairs, scattered with ``np.maximum.at`` /
        ``np.minimum.at`` into per-(object, tic) bound matrices."""
        cols = self._segment_columns()
        n_t = times.size
        t_lo, t_hi = int(times.min()), int(times.max())
        sel = (cols.t0 <= t_hi) & (cols.t1 >= t_lo)
        examined = int(np.count_nonzero(sel))
        if examined == 0:
            return PruningResult([], [], np.full(n_t, np.inf), examined)
        e = np.flatnonzero(sel)
        covered = (times[None, :] >= cols.t0[e, None]) & (
            times[None, :] <= cols.t1[e, None]
        )
        pair_e, pair_t = np.nonzero(covered)
        if pair_e.size == 0:
            # Entries overlap the query hull but cover none of its
            # (possibly sparse) times.
            return PruningResult([], [], np.full(n_t, np.inf), examined)
        obj_pairs = cols.obj[e][pair_e]
        present = np.unique(obj_pairs)
        rows_map = np.full(len(cols.ids), -1, dtype=np.intp)
        rows_map[present] = np.arange(present.size)
        dmin_mat = np.full((present.size, n_t), -np.inf)
        dmax_mat = np.full((present.size, n_t), np.inf)
        plo = cols.lo[e][pair_e]
        phi = cols.hi[e][pair_e]
        pts = q_coords[pair_t]
        delta = np.maximum(np.maximum(plo - pts, pts - phi), 0.0)
        lo_d = np.sqrt(np.sum(delta * delta, axis=-1))
        delta = np.maximum(np.abs(pts - plo), np.abs(phi - pts))
        hi_d = np.sqrt(np.sum(delta * delta, axis=-1))
        rows = rows_map[obj_pairs]
        np.maximum.at(dmin_mat, (rows, pair_t), lo_d)
        np.minimum.at(dmax_mat, (rows, pair_t), hi_d)
        # Tics no segment covers: dmax stayed +inf, dmin must read +inf
        # too (not the -inf scatter identity).
        uncovered = np.isinf(dmax_mat)
        dmin_mat[uncovered] = np.inf
        present_ids = [cols.ids[i] for i in present]
        if refine_per_tic:
            self._refine_vectorized(dmin_mat, dmax_mat, present_ids, q_coords, times)
        return self._classify_matrix(
            present_ids, dmin_mat, dmax_mat, times, k, examined
        )

    def _classify_matrix(
        self,
        ids: list[str],
        dmin_mat: np.ndarray,
        dmax_mat: np.ndarray,
        times: np.ndarray,
        k: int,
        examined: int,
    ) -> PruningResult:
        """Matrix form of :meth:`_classify` (same semantics, no dict loop)."""
        n_t = times.size
        if not ids:
            return PruningResult([], [], np.full(n_t, np.inf), examined)
        finite_counts = np.isfinite(dmax_mat).sum(axis=0)
        if k <= dmax_mat.shape[0]:
            kth = np.sort(dmax_mat, axis=0)[k - 1]
        else:
            kth = np.full(n_t, np.inf)
        prune_dist = np.where(finite_counts >= k, kth, np.inf)
        alive = np.isfinite(dmax_mat)
        within = dmin_mat <= prune_dist[None, :]
        influencer_mask = (alive & within).any(axis=1)
        candidate_mask = alive.all(axis=1) & within.all(axis=1)
        return PruningResult(
            candidates=[ids[i] for i in np.flatnonzero(candidate_mask)],
            influencers=[ids[i] for i in np.flatnonzero(influencer_mask)],
            prune_distances=prune_dist,
            examined_entries=examined,
            dmin_bounds={oid: dmin_mat[i] for i, oid in enumerate(ids)},
            dmax_bounds={oid: dmax_mat[i] for i, oid in enumerate(ids)},
        )
