"""An R*-tree (Beckmann et al., SIGMOD 1990) built from scratch.

The UST-tree of the paper (Section 6, [25]) indexes one spatio-temporal
minimum bounding rectangle per inter-observation segment of every uncertain
object with an R*-tree.  No spatial index library is assumed; this module
implements insertion with the R* split heuristics (choose-split-axis by
margin, choose-split-index by overlap, forced reinsertion) plus an STR bulk
loader, window queries and generic traversal hooks.

The tree is dimension-agnostic: the UST-tree uses 3-d boxes
``(x, y, time)`` while tests also exercise 2-d boxes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .geometry import Rect, mindist_point_rect

__all__ = ["RStarTree", "Entry"]


@dataclass
class Entry:
    """A leaf payload: a bounding rect and an opaque data object."""

    rect: Rect
    data: Any


class _Node:
    __slots__ = ("leaf", "entries", "children", "parent", "_mbr")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: list[Entry] = []  # used when leaf
        self.children: list[_Node] = []  # used when not leaf
        self.parent: _Node | None = None
        self._mbr: Rect | None = None  # cache, invalidated on mutation

    def rects(self) -> list[Rect]:
        if self.leaf:
            return [e.rect for e in self.entries]
        return [c.mbr() for c in self.children]

    def mbr(self) -> Rect:
        if self._mbr is None:
            self._mbr = Rect.union_all(self.rects())
        return self._mbr

    def invalidate_up(self) -> None:
        """Drop cached MBRs on the path to the root after a mutation."""
        node: _Node | None = self
        while node is not None:
            node._mbr = None
            node = node.parent

    def __len__(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)


@dataclass
class _SplitCandidate:
    margin: float
    overlap: float
    volume: float
    first: list
    second: list


class RStarTree:
    """R*-tree over :class:`~repro.spatial.geometry.Rect` keys.

    Parameters
    ----------
    max_entries:
        Node capacity ``M``; nodes split when they would exceed it.
    min_fill:
        Minimum fill fraction ``m / M`` (the R* paper recommends 0.4).
    reinsert_fraction:
        Fraction ``p`` of entries re-inserted on first overflow per level
        (R* recommends 0.3).
    """

    def __init__(
        self,
        max_entries: int = 16,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.max_entries = max_entries
        self.min_entries = max(2, int(round(max_entries * min_fill)))
        self.reinsert_count = max(1, int(round(max_entries * reinsert_fraction)))
        self.root = _Node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def insert(self, rect: Rect, data: Any) -> None:
        """Insert one entry; triggers R* reinsertion/splitting as needed."""
        self._insert_entry(Entry(rect, data), set())
        self._size += 1

    @staticmethod
    def bulk_load(
        items: Sequence[tuple[Rect, Any]],
        max_entries: int = 16,
        min_fill: float = 0.4,
    ) -> "RStarTree":
        """Sort-Tile-Recursive bulk loading.

        Produces a packed tree much faster than repeated insertion; used
        when building a UST-tree over a whole database at once.
        """
        tree = RStarTree(max_entries=max_entries, min_fill=min_fill)
        if not items:
            return tree
        leaves: list[_Node] = []
        for chunk in _str_partition(list(items), max_entries):
            node = _Node(leaf=True)
            node.entries = [Entry(r, d) for r, d in chunk]
            leaves.append(node)
        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            keyed = [(n.mbr(), n) for n in level]
            for chunk in _str_partition(keyed, max_entries):
                node = _Node(leaf=False)
                node.children = [n for _, n in chunk]
                for child in node.children:
                    child.parent = node
                parents.append(node)
            level = parents
        tree.root = level[0]
        tree._size = len(items)
        return tree

    def insert_many(self, items: Sequence[tuple[Rect, Any]]) -> None:
        """Insert a batch of entries through the normal R* insertion path.

        Used by incremental index maintenance (one object's recomputed
        segments re-entering the UST-tree); unlike :meth:`bulk_load` this
        grows an existing tree in place.
        """
        for rect, data in items:
            self.insert(rect, data)

    def delete_many(self, items: Sequence[tuple[Rect, Any]]) -> int:
        """Delete a batch of ``(rect, data)`` entries; returns the count
        actually removed (entries not found are skipped, not an error)."""
        removed = 0
        for rect, data in items:
            if self.delete(rect, data):
                removed += 1
        return removed

    def delete(self, rect: Rect, data: Any) -> bool:
        """Remove the entry matching ``(rect, data)``; returns success.

        Standard R-tree deletion: locate the leaf, remove the entry,
        condense the tree (underfull nodes are dissolved and their entries
        re-inserted), and shrink the root when it degenerates to a single
        child.
        """
        leaf = self._find_leaf(self.root, rect, data)
        if leaf is None:
            return False
        for i, entry in enumerate(leaf.entries):
            if entry.rect == rect and entry.data == data:
                del leaf.entries[i]
                break
        leaf.invalidate_up()
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(self, node: _Node, rect: Rect, data: Any) -> _Node | None:
        if node.leaf:
            for entry in node.entries:
                if entry.rect == rect and entry.data == data:
                    return node
            return None
        for child in node.children:
            if child.mbr().contains(rect):
                found = self._find_leaf(child, rect, data)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        """Dissolve underfull ancestors, re-inserting their entries."""
        orphans: list[Entry] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if len(current) < self.min_entries:
                parent.children.remove(current)
                parent.invalidate_up()
                orphans.extend(self._collect_entries(current))
            current = parent
        # Shrink a degenerate root.
        while not self.root.leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
            self.root.parent = None
        if not self.root.leaf and not self.root.children:
            self.root = _Node(leaf=True)
        # Orphaned entries re-enter through the normal insertion path.
        for entry in orphans:
            self._insert_entry(entry, set())

    def _collect_entries(self, node: _Node) -> list[Entry]:
        if node.leaf:
            return list(node.entries)
        out: list[Entry] = []
        for child in node.children:
            out.extend(self._collect_entries(child))
        return out

    def nearest(self, point: Sequence[float], k: int = 1) -> list[tuple[float, Entry]]:
        """The ``k`` entries with smallest mindist to ``point``, best-first.

        Classic branch-and-bound over the tree: a priority queue ordered by
        mindist expands nodes only while they can still beat the current
        k-th best, so the search touches a small fraction of the tree.
        Returns ``(distance, entry)`` pairs sorted by distance.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._size == 0:
            return []
        pt = np.asarray(point, dtype=float)
        counter = 0  # heap tiebreaker: entries/nodes are not comparable
        heap: list[tuple[float, int, object]] = [
            (float(mindist_point_rect(pt, self.root.mbr())), counter, self.root)
        ]
        out: list[tuple[float, Entry]] = []
        while heap and len(out) < k:
            dist, _, item = heapq.heappop(heap)
            if isinstance(item, Entry):
                out.append((dist, item))
                continue
            node: _Node = item
            if node.leaf:
                for entry in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (float(mindist_point_rect(pt, entry.rect)), counter, entry),
                    )
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (float(mindist_point_rect(pt, child.mbr())), counter, child),
                    )
        return out

    def search(self, window: Rect) -> list[Entry]:
        """All entries whose rect intersects ``window``."""
        out: list[Entry] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.extend(e for e in node.entries if e.rect.intersects(window))
            else:
                stack.extend(
                    c for c in node.children if c.mbr().intersects(window)
                )
        return out

    def traverse_pruned(
        self, descend: Callable[[Rect], bool]
    ) -> Iterator[Entry]:
        """Yield entries of subtrees for which ``descend(mbr)`` is true.

        Generic hook used by the UST-tree to run dmin/dmax pruning on inner
        nodes before reaching leaf entries.
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for entry in node.entries:
                    if descend(entry.rect):
                        yield entry
            else:
                stack.extend(c for c in node.children if descend(c.mbr()))

    def entries(self) -> Iterator[Entry]:
        """Iterate over all leaf entries."""
        yield from self.traverse_pruned(lambda _rect: True)

    def height(self) -> int:
        h = 1
        node = self.root
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Validate structural invariants (tests call this after mutations)."""
        self._check_node(self.root, is_root=True)
        count = sum(1 for _ in self.entries())
        if count != self._size:
            raise AssertionError(f"size mismatch: counted {count}, tracked {self._size}")

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: Entry, reinserted_levels: set[int]) -> None:
        leaf = self._choose_leaf(entry.rect)
        leaf.entries.append(entry)
        leaf.invalidate_up()
        self._handle_overflow(leaf, level=self._level_of(leaf), reinserted=reinserted_levels)

    def _level_of(self, node: _Node) -> int:
        level = 0
        while node.parent is not None:
            node = node.parent
            level += 1
        return level

    def _choose_leaf(self, rect: Rect) -> _Node:
        """R* subtree choice, vectorized over a node's children.

        Same keys as the classic formulation — (overlap enlargement,
        volume enlargement, volume) above leaves, (volume enlargement,
        volume) higher up — computed for all children in one numpy pass
        instead of per-child ``Rect`` arithmetic (the dominant cost of
        incremental index maintenance), with ``lexsort``'s stable order
        reproducing ``min()``'s first-minimum tie-break.
        """
        rect_lo = np.asarray(rect.lo)
        rect_hi = np.asarray(rect.hi)
        node = self.root
        while not node.leaf:
            children = node.children
            los = np.array([c.mbr().lo for c in children])
            his = np.array([c.mbr().hi for c in children])
            union_lo = np.minimum(los, rect_lo)
            union_hi = np.maximum(his, rect_hi)
            volume = np.prod(his - los, axis=1)
            enlargement = np.prod(union_hi - union_lo, axis=1) - volume
            if children[0].leaf:
                overlap = _overlap_deltas(los, his, union_lo, union_hi)
                best = int(np.lexsort((volume, enlargement, overlap))[0])
            else:
                best = int(np.lexsort((volume, enlargement))[0])
            node = children[best]
        return node

    def _handle_overflow(
        self, node: _Node, level: int, reinserted: set[int]
    ) -> None:
        if len(node) <= self.max_entries:
            return
        if node.leaf and node.parent is not None and level not in reinserted:
            reinserted.add(level)
            self._reinsert(node, reinserted)
        else:
            self._split(node, reinserted)

    def _reinsert(self, node: _Node, reinserted: set[int]) -> None:
        """Forced reinsertion: re-add the p entries farthest from the center."""
        assert node.leaf, "reinsertion is only triggered for leaves here"
        center = node.mbr().center
        node.entries.sort(
            key=lambda e: float(np.sum((e.rect.center - center) ** 2)),
            reverse=True,
        )
        spill = node.entries[: self.reinsert_count]
        node.entries = node.entries[self.reinsert_count :]
        node.invalidate_up()
        for entry in spill:
            leaf = self._choose_leaf(entry.rect)
            leaf.entries.append(entry)
            leaf.invalidate_up()
            self._handle_overflow(leaf, self._level_of(leaf), reinserted)

    def _split(self, node: _Node, reinserted: set[int]) -> None:
        items = node.entries if node.leaf else node.children
        rect_of = (lambda e: e.rect) if node.leaf else (lambda c: c.mbr())
        first, second = _rstar_split(items, rect_of, self.min_entries)

        sibling = _Node(leaf=node.leaf)
        if node.leaf:
            node.entries = first
            sibling.entries = second
        else:
            node.children = first
            sibling.children = second
            for child in sibling.children:
                child.parent = sibling
        node._mbr = None

        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            self.root = new_root
        else:
            parent.children.append(sibling)
            sibling.parent = parent
            parent.invalidate_up()
            self._handle_overflow(parent, self._level_of(parent), reinserted)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _check_node(self, node: _Node, is_root: bool) -> Rect | None:
        n = len(node)
        if n > self.max_entries:
            raise AssertionError(f"node overfull: {n} > {self.max_entries}")
        if not is_root and n < self.min_entries:
            raise AssertionError(f"node underfull: {n} < {self.min_entries}")
        if node.leaf:
            return node.mbr() if node.entries else None
        depths = set()
        for child in node.children:
            if child.parent is not node:
                raise AssertionError("broken parent pointer")
            child_mbr = self._check_node(child, is_root=False)
            if child_mbr is not None and not node.mbr().contains(child_mbr):
                raise AssertionError("parent MBR does not contain child MBR")
            depths.add(_depth(child))
        if len(depths) > 1:
            raise AssertionError(f"unbalanced: leaf depths {depths}")
        return node.mbr()


def _depth(node: _Node) -> int:
    d = 1
    while not node.leaf:
        node = node.children[0]
        d += 1
    return d


def _pairwise_overlap(lo_a, hi_a, lo_b, hi_b) -> np.ndarray:
    """Overlap volumes between two rect families, ``(len(a), len(b))``.

    Matches :meth:`Rect.overlap_volume` exactly: any negative extent makes
    the pair disjoint (volume 0), never a sign-flipped product.
    """
    ext = np.minimum(hi_a[:, None, :], hi_b[None, :, :]) - np.maximum(
        lo_a[:, None, :], lo_b[None, :, :]
    )
    return np.where((ext < 0).any(axis=-1), 0.0, np.prod(ext, axis=-1))


def _overlap_deltas(
    los: np.ndarray, his: np.ndarray, union_lo: np.ndarray, union_hi: np.ndarray
) -> np.ndarray:
    """Per child: increase in overlap with its siblings if the new rect
    joined it (the R* choose-subtree criterion at the leaf level)."""
    after = _pairwise_overlap(union_lo, union_hi, los, his)
    before = _pairwise_overlap(los, his, los, his)
    delta = after - before
    np.fill_diagonal(delta, 0.0)
    return delta.sum(axis=1)


def _rstar_split(items: list, rect_of, min_entries: int):
    """R* topological split: axis by margin sum, index by (overlap, volume)."""
    ndim = rect_of(items[0]).ndim
    best: _SplitCandidate | None = None
    for axis in range(ndim):
        for key in (
            lambda it: rect_of(it).lo[axis],
            lambda it: rect_of(it).hi[axis],
        ):
            ordered = sorted(items, key=key)
            margin_sum = 0.0
            candidates: list[_SplitCandidate] = []
            for k in range(min_entries, len(ordered) - min_entries + 1):
                first, second = ordered[:k], ordered[k:]
                mbr1 = Rect.union_all([rect_of(i) for i in first])
                mbr2 = Rect.union_all([rect_of(i) for i in second])
                margin = mbr1.margin() + mbr2.margin()
                margin_sum += margin
                candidates.append(
                    _SplitCandidate(
                        margin=margin,
                        overlap=mbr1.overlap_volume(mbr2),
                        volume=mbr1.volume() + mbr2.volume(),
                        first=first,
                        second=second,
                    )
                )
            axis_best = min(candidates, key=lambda c: (c.overlap, c.volume))
            axis_best = _SplitCandidate(
                margin=margin_sum,
                overlap=axis_best.overlap,
                volume=axis_best.volume,
                first=axis_best.first,
                second=axis_best.second,
            )
            if best is None or (axis_best.margin, axis_best.overlap, axis_best.volume) < (
                best.margin,
                best.overlap,
                best.volume,
            ):
                best = axis_best
    assert best is not None
    return list(best.first), list(best.second)


def _even_chunks(items: list, n_parts: int) -> Iterator[list]:
    """Split into ``n_parts`` contiguous chunks whose sizes differ by ≤ 1."""
    n_parts = max(1, min(n_parts, len(items)))
    base, extra = divmod(len(items), n_parts)
    start = 0
    for i in range(n_parts):
        size = base + (1 if i < extra else 0)
        yield items[start : start + size]
        start += size


def _str_partition(items: list, capacity: int) -> Iterator[list]:
    """Partition items into ≤ ``capacity`` chunks via Sort-Tile-Recursive.

    Items are ``(Rect, payload)`` pairs or ``(Rect, node)`` pairs; sorting
    uses rect centers.  Chunk sizes are distributed evenly (all within one
    of ``len / n_chunks``) instead of packing full chunks with a small
    tail: a tail chunk below the R* minimum fill would violate the tree's
    node-underfull invariant the moment it became a node.  Even splits
    keep every chunk ≥ ``capacity / 2``, which dominates ``min_fill``
    (capped at 0.5).
    """
    if len(items) <= capacity:
        yield items
        return
    ndim = items[0][0].ndim

    def tile(chunk: list, axis: int) -> Iterator[list]:
        chunk.sort(key=lambda it: it[0].center[axis])
        n_target = int(np.ceil(len(chunk) / capacity))
        if axis == ndim - 1 or len(chunk) <= capacity:
            yield from _even_chunks(chunk, n_target)
            return
        remaining_dims = ndim - axis
        n_slabs = int(np.ceil(n_target ** (1.0 / remaining_dims)))
        for slab in _even_chunks(chunk, n_slabs):
            yield from tile(slab, axis + 1)

    yield from tile(list(items), 0)
