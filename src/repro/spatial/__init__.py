"""Spatial toolkit: geometry, the R*-tree and the UST-tree index.

The UST-tree is re-exported lazily (PEP 562): it depends on the
trajectory layer, which in turn uses this package's geometry — eager
imports would be circular.
"""

from .geometry import (
    Rect,
    maxdist_point_rect,
    maxdist_rects,
    mindist_point_rect,
    mindist_rects,
)
from .rstar import Entry, RStarTree

__all__ = [
    "Entry",
    "PruningResult",
    "RStarTree",
    "Rect",
    "SegmentKey",
    "USTTree",
    "maxdist_point_rect",
    "maxdist_rects",
    "mindist_point_rect",
    "mindist_rects",
]

_LAZY = ("USTTree", "PruningResult", "SegmentKey")


def __getattr__(name: str):
    if name in _LAZY:
        from . import ust_tree

        return getattr(ust_tree, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
