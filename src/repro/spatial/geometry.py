"""Spatial primitives: axis-aligned boxes and min/max distance computations.

These primitives back both the R*-tree (:mod:`repro.spatial.rstar`) and the
UST-tree pruning rules of Section 6 of the paper, which compare
``dmin(o(t), q(t))`` against ``dmax(o'(t), q(t))`` over minimum bounding
rectangles of reachable states.

All coordinates are ``float`` numpy arrays; boxes are closed intervals
``[lo, hi]`` per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Rect",
    "mindist_point_rect",
    "maxdist_point_rect",
    "mindist_rects",
    "maxdist_rects",
]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned box in d dimensions.

    Parameters
    ----------
    lo, hi:
        Per-dimension lower and upper bounds.  ``lo[i] <= hi[i]`` must hold
        for every dimension ``i``.
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(
                f"lo and hi must have the same dimension, got {len(self.lo)} and {len(self.hi)}"
            )
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"degenerate rect: lo={self.lo} > hi={self.hi}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_points(points: np.ndarray) -> "Rect":
        """Minimum bounding rect of an (n, d) array of points."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        if pts.size == 0:
            raise ValueError("cannot bound an empty point set")
        return Rect(tuple(pts.min(axis=0)), tuple(pts.max(axis=0)))

    @staticmethod
    def point(coords: Sequence[float]) -> "Rect":
        """A degenerate rect covering a single point."""
        c = tuple(float(x) for x in coords)
        return Rect(c, c)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def center(self) -> np.ndarray:
        return (np.asarray(self.lo) + np.asarray(self.hi)) / 2.0

    def volume(self) -> float:
        return float(np.prod(np.asarray(self.hi) - np.asarray(self.lo)))

    def margin(self) -> float:
        """Sum of edge lengths (the R* split criterion calls this margin)."""
        return float(np.sum(np.asarray(self.hi) - np.asarray(self.lo)))

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    @staticmethod
    def union_all(rects: Iterable["Rect"]) -> "Rect":
        rects = list(rects)
        if not rects:
            raise ValueError("cannot union an empty collection of rects")
        lo = np.min([r.lo for r in rects], axis=0)
        hi = np.max([r.hi for r in rects], axis=0)
        return Rect(tuple(lo), tuple(hi))

    def intersects(self, other: "Rect") -> bool:
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains(self, other: "Rect") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        return all(l <= p <= h for l, p, h in zip(self.lo, point, self.hi))

    def overlap_volume(self, other: "Rect") -> float:
        """Volume of the intersection (0.0 when disjoint)."""
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        ext = hi - lo
        if np.any(ext < 0):
            return 0.0
        return float(np.prod(ext))

    def enlargement(self, other: "Rect") -> float:
        """Volume increase needed for this rect to cover ``other``."""
        return self.union(other).volume() - self.volume()

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def mindist_point(self, point: Sequence[float]) -> float:
        """Minimum Euclidean distance from ``point`` to this rect."""
        return float(mindist_point_rect(np.asarray(point, dtype=float), self))

    def maxdist_point(self, point: Sequence[float]) -> float:
        """Maximum Euclidean distance from ``point`` to this rect."""
        return float(maxdist_point_rect(np.asarray(point, dtype=float), self))

    def mindist_rect(self, other: "Rect") -> float:
        return mindist_rects(self, other)

    def maxdist_rect(self, other: "Rect") -> float:
        return maxdist_rects(self, other)


def mindist_point_rect(points: np.ndarray, rect: Rect) -> np.ndarray:
    """Minimum distance from one or many points to ``rect``.

    ``points`` may be a single point ``(d,)`` or a batch ``(n, d)``; the
    result has matching shape ``()`` or ``(n,)``.
    """
    pts = np.asarray(points, dtype=float)
    lo = np.asarray(rect.lo)
    hi = np.asarray(rect.hi)
    delta = np.maximum(np.maximum(lo - pts, pts - hi), 0.0)
    return np.sqrt(np.sum(delta * delta, axis=-1))


def maxdist_point_rect(points: np.ndarray, rect: Rect) -> np.ndarray:
    """Maximum distance from one or many points to ``rect``.

    The farthest point of a box from ``p`` is, per dimension, whichever of
    ``lo``/``hi`` lies farther from ``p``.
    """
    pts = np.asarray(points, dtype=float)
    lo = np.asarray(rect.lo)
    hi = np.asarray(rect.hi)
    delta = np.maximum(np.abs(pts - lo), np.abs(hi - pts))
    return np.sqrt(np.sum(delta * delta, axis=-1))


def mindist_rects(a: Rect, b: Rect) -> float:
    """Minimum distance between any pair of points of two boxes."""
    lo_a, hi_a = np.asarray(a.lo), np.asarray(a.hi)
    lo_b, hi_b = np.asarray(b.lo), np.asarray(b.hi)
    delta = np.maximum(np.maximum(lo_a - hi_b, lo_b - hi_a), 0.0)
    return float(np.sqrt(np.sum(delta * delta)))


def maxdist_rects(a: Rect, b: Rect) -> float:
    """Maximum distance between any pair of points of two boxes."""
    lo_a, hi_a = np.asarray(a.lo), np.asarray(a.hi)
    lo_b, hi_b = np.asarray(b.lo), np.asarray(b.hi)
    delta = np.maximum(np.abs(hi_a - lo_b), np.abs(hi_b - lo_a))
    return float(np.sqrt(np.sum(delta * delta)))
