"""Pytest bootstrap: make the src layout importable without installation.

The canonical workflow is ``pip install -e .``; this fallback keeps the
test suite runnable in offline environments where editable installs are
unavailable (no ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
