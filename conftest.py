"""Pytest bootstrap: make the src layout importable without installation.

The canonical workflow is ``pip install -e .``; this fallback keeps the
test suite runnable in offline environments where editable installs are
unavailable (no ``wheel`` package).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite golden files (e.g. tests/data/paper_example_golden.json) "
        "from the current implementation instead of asserting against them",
    )
